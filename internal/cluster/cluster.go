// Package cluster implements the paper's second piece of future work
// (§V): "adopt the ConVGPU in the clustering system like Docker Swarm."
//
// A cluster is a set of nodes, each running its own multi-GPU ConVGPU
// scheduler (package multigpu). A cluster-level strategy — named after
// Docker Swarm's scheduling strategies — picks the node for each new
// container; the node's placement policy then picks the GPU, and the
// per-GPU memory scheduler takes over exactly as in the single-machine
// system. Nothing in the core changes: the cluster layer only routes.
//
// Strategies:
//
//   - spread: the node with the fewest containers (Swarm's default),
//     ties broken by most free GPU memory;
//   - binpack: the most loaded node that can still fully hold the
//     container, concentrating load to leave whole nodes free;
//   - random: uniform over nodes that can ever hold the container.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
	"convgpu/internal/core"
	"convgpu/internal/multigpu"
)

// ErrUnknownContainer mirrors core.ErrUnknownContainer at cluster scope.
var ErrUnknownContainer = errors.New("cluster: unknown container")

// NodeInfo summarizes one node for strategy decisions.
type NodeInfo struct {
	// Index is the node ordinal.
	Index int
	// Name is the node's display name.
	Name string
	// Containers is the number of containers placed on the node.
	Containers int
	// MaxDeviceCapacity is the largest single-GPU capacity, the bound
	// on what limit the node can ever hold.
	MaxDeviceCapacity bytesize.Size
	// MaxDevicePool is the largest per-GPU free pool on the node.
	MaxDevicePool bytesize.Size
	// TotalFree sums free pool across the node's GPUs.
	TotalFree bytesize.Size
}

// Strategy selects a node for a container. Place returns a node index
// or -1 when no node can ever hold the limit.
type Strategy interface {
	Name() string
	Place(limit bytesize.Size, nodes []NodeInfo) int
}

// Strategy names (Docker Swarm's vocabulary).
const (
	StrategySpread  = "spread"
	StrategyBinpack = "binpack"
	StrategyRandom  = "random"
)

// StrategyNames lists the strategies.
func StrategyNames() []string {
	return []string{StrategySpread, StrategyBinpack, StrategyRandom}
}

// NewStrategy constructs a strategy by name; seed only affects random.
func NewStrategy(name string, seed int64) (Strategy, error) {
	switch strings.ToLower(name) {
	case StrategySpread:
		return Spread{}, nil
	case StrategyBinpack:
		return Binpack{}, nil
	case StrategyRandom, "rand":
		return NewRandomStrategy(seed), nil
	default:
		return nil, fmt.Errorf("cluster: unknown strategy %q", name)
	}
}

// Spread picks the node with the fewest containers (ties: most total
// free memory) among nodes that can ever hold the limit.
type Spread struct{}

// Name implements Strategy.
func (Spread) Name() string { return StrategySpread }

// Place implements Strategy.
func (Spread) Place(limit bytesize.Size, nodes []NodeInfo) int {
	best := -1
	for _, n := range nodes {
		if n.MaxDeviceCapacity < limit {
			continue
		}
		if best == -1 ||
			n.Containers < nodes[best].Containers ||
			(n.Containers == nodes[best].Containers && n.TotalFree > nodes[best].TotalFree) {
			best = n.Index
		}
	}
	return best
}

// Binpack picks the most loaded node whose largest free GPU pool still
// covers the whole limit, falling back to spread when none fits.
type Binpack struct{}

// Name implements Strategy.
func (Binpack) Name() string { return StrategyBinpack }

// Place implements Strategy.
func (Binpack) Place(limit bytesize.Size, nodes []NodeInfo) int {
	best := -1
	for _, n := range nodes {
		if n.MaxDeviceCapacity < limit || n.MaxDevicePool < limit {
			continue
		}
		if best == -1 || n.Containers > nodes[best].Containers {
			best = n.Index
		}
	}
	if best != -1 {
		return best
	}
	return Spread{}.Place(limit, nodes)
}

// RandomStrategy places uniformly among nodes that can ever hold the
// limit; seeded for reproducible experiments.
type RandomStrategy struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandomStrategy builds a seeded random strategy.
func NewRandomStrategy(seed int64) *RandomStrategy {
	return &RandomStrategy{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Strategy.
func (*RandomStrategy) Name() string { return StrategyRandom }

// Place implements Strategy.
func (r *RandomStrategy) Place(limit bytesize.Size, nodes []NodeInfo) int {
	var eligible []int
	for _, n := range nodes {
		if n.MaxDeviceCapacity >= limit {
			eligible = append(eligible, n.Index)
		}
	}
	if len(eligible) == 0 {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return eligible[r.rng.Intn(len(eligible))]
}

// Config assembles a cluster.
type Config struct {
	// Nodes is the number of nodes (required, >= 1).
	Nodes int
	// GPUsPerNode is the GPU count per node (required, >= 1).
	GPUsPerNode int
	// CapacityPerGPU is each GPU's schedulable memory.
	CapacityPerGPU bytesize.Size
	// Algorithm is the per-GPU redistribution algorithm name.
	Algorithm string
	// AlgSeed seeds the Random redistribution algorithm.
	AlgSeed int64
	// DevicePolicy places containers on GPUs within a node (default
	// least-loaded).
	DevicePolicy string
	// Strategy places containers on nodes (default spread).
	Strategy Strategy
	// Clock is shared by every scheduler in the cluster.
	Clock clock.Clock
	// ContextOverhead per process (default 66 MiB).
	ContextOverhead bytesize.Size
}

// Cluster routes containers to per-node ConVGPU schedulers.
type Cluster struct {
	nodes    []*multigpu.Scheduler
	names    []string
	strategy Strategy

	mu        sync.Mutex
	placement map[core.ContainerID]int
}

// New builds a cluster of identical nodes.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.GPUsPerNode < 1 {
		return nil, fmt.Errorf("cluster: need at least one GPU per node, got %d", cfg.GPUsPerNode)
	}
	if cfg.Strategy == nil {
		cfg.Strategy = Spread{}
	}
	devPolicyName := cfg.DevicePolicy
	if devPolicyName == "" {
		devPolicyName = multigpu.PolicyLeastLoaded
	}
	c := &Cluster{strategy: cfg.Strategy, placement: make(map[core.ContainerID]int)}
	for i := 0; i < cfg.Nodes; i++ {
		pol, err := multigpu.NewPolicy(devPolicyName)
		if err != nil {
			return nil, err
		}
		sched, err := multigpu.New(multigpu.Config{
			Devices:           cfg.GPUsPerNode,
			CapacityPerDevice: cfg.CapacityPerGPU,
			Algorithm:         cfg.Algorithm,
			AlgSeed:           cfg.AlgSeed + int64(i)*100,
			Policy:            pol,
			Clock:             cfg.Clock,
			ContextOverhead:   cfg.ContextOverhead,
		})
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, sched)
		c.names = append(c.names, fmt.Sprintf("node-%d", i))
	}
	return c, nil
}

// Nodes reports per-node summaries.
func (c *Cluster) Nodes() []NodeInfo {
	c.mu.Lock()
	perNode := make([]int, len(c.nodes))
	for _, n := range c.placement {
		perNode[n]++
	}
	c.mu.Unlock()
	out := make([]NodeInfo, len(c.nodes))
	for i, n := range c.nodes {
		info := NodeInfo{Index: i, Name: c.names[i], Containers: perNode[i]}
		for _, d := range n.Devices() {
			info.TotalFree += d.PoolFree
			if d.Capacity > info.MaxDeviceCapacity {
				info.MaxDeviceCapacity = d.Capacity
			}
			if d.PoolFree > info.MaxDevicePool {
				info.MaxDevicePool = d.PoolFree
			}
		}
		out[i] = info
	}
	return out
}

// StrategyName returns the active strategy's name.
func (c *Cluster) StrategyName() string { return c.strategy.Name() }

// Register places the container on a node (strategy) and GPU (node
// policy) and registers it with that GPU's scheduler.
func (c *Cluster) Register(id core.ContainerID, limit bytesize.Size) (bytesize.Size, error) {
	node := c.strategy.Place(limit, c.Nodes())
	if node < 0 || node >= len(c.nodes) {
		return 0, fmt.Errorf("cluster: no node can hold a %v container", limit)
	}
	_, granted, err := c.nodes[node].Register(id, limit)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.placement[id] = node
	c.mu.Unlock()
	return granted, nil
}

// Placement reports the node and GPU a container lives on.
func (c *Cluster) Placement(id core.ContainerID) (node, device int, err error) {
	sched, node, err := c.nodeOf(id)
	if err != nil {
		return -1, -1, err
	}
	device, err = sched.Placement(id)
	return node, device, err
}

func (c *Cluster) nodeOf(id core.ContainerID) (*multigpu.Scheduler, int, error) {
	c.mu.Lock()
	n, ok := c.placement[id]
	c.mu.Unlock()
	if !ok {
		return nil, -1, fmt.Errorf("%w: %s", ErrUnknownContainer, id)
	}
	return c.nodes[n], n, nil
}

// RequestAlloc forwards to the container's node.
func (c *Cluster) RequestAlloc(id core.ContainerID, pid int, size bytesize.Size) (core.AllocResult, error) {
	sched, _, err := c.nodeOf(id)
	if err != nil {
		return core.AllocResult{}, err
	}
	return sched.RequestAlloc(id, pid, size)
}

// ConfirmAlloc forwards to the container's node.
func (c *Cluster) ConfirmAlloc(id core.ContainerID, pid int, addr uint64, size bytesize.Size) error {
	sched, _, err := c.nodeOf(id)
	if err != nil {
		return err
	}
	return sched.ConfirmAlloc(id, pid, addr, size)
}

// Free forwards to the container's node.
func (c *Cluster) Free(id core.ContainerID, pid int, addr uint64) (bytesize.Size, core.Update, error) {
	sched, _, err := c.nodeOf(id)
	if err != nil {
		return 0, core.Update{}, err
	}
	return sched.Free(id, pid, addr)
}

// ProcessExit forwards to the container's node.
func (c *Cluster) ProcessExit(id core.ContainerID, pid int) (bytesize.Size, core.Update, error) {
	sched, _, err := c.nodeOf(id)
	if err != nil {
		return 0, core.Update{}, err
	}
	return sched.ProcessExit(id, pid)
}

// Close forwards the close signal and forgets the placement.
func (c *Cluster) Close(id core.ContainerID) (bytesize.Size, core.Update, error) {
	sched, _, err := c.nodeOf(id)
	if err != nil {
		return 0, core.Update{}, err
	}
	released, u, err := sched.Close(id)
	if err == nil {
		c.mu.Lock()
		delete(c.placement, id)
		c.mu.Unlock()
	}
	return released, u, err
}

// MemInfo forwards to the container's node.
func (c *Cluster) MemInfo(id core.ContainerID) (free, total bytesize.Size, err error) {
	sched, _, err := c.nodeOf(id)
	if err != nil {
		return 0, 0, err
	}
	return sched.MemInfo(id)
}

// Info returns the scheduler snapshot row for a container.
func (c *Cluster) Info(id core.ContainerID) (core.ContainerInfo, error) {
	sched, _, err := c.nodeOf(id)
	if err != nil {
		return core.ContainerInfo{}, err
	}
	return sched.Info(id)
}

// TotalUsed sums usage across every node.
func (c *Cluster) TotalUsed() bytesize.Size {
	var total bytesize.Size
	for _, n := range c.nodes {
		total += n.TotalUsed()
	}
	return total
}

// CheckInvariants validates every node.
func (c *Cluster) CheckInvariants() error {
	for i, n := range c.nodes {
		if err := n.CheckInvariants(); err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	return nil
}
