// Package cluster implements the paper's second piece of future work
// (§V): "adopt the ConVGPU in the clustering system like Docker Swarm."
//
// A cluster is a set of nodes, each running its own multi-GPU ConVGPU
// scheduler (package multigpu). A cluster-level strategy — named after
// Docker Swarm's scheduling strategies — picks the node for each new
// container; the node's placement policy then picks the GPU, and the
// per-GPU memory scheduler takes over exactly as in the single-machine
// system. Nothing in the core changes: the cluster layer only routes.
//
// Strategies:
//
//   - spread: the node with the fewest containers (Swarm's default),
//     ties broken by most free GPU memory;
//   - binpack: the most loaded node that can still fully hold the
//     container, concentrating load to leave whole nodes free;
//   - random: uniform over nodes that can ever hold the container.
package cluster

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
	"convgpu/internal/core"
	"convgpu/internal/errs"
	"convgpu/internal/multigpu"
)

// ErrUnknownContainer is core.ErrUnknownContainer: an operation for a
// container no node serves.
var ErrUnknownContainer = core.ErrUnknownContainer

// NodeInfo summarizes one node for strategy decisions.
type NodeInfo struct {
	// Index is the node ordinal.
	Index int
	// Name is the node's display name.
	Name string
	// Containers is the number of containers placed on the node.
	Containers int
	// MaxDeviceCapacity is the largest single-GPU capacity, the bound
	// on what limit the node can ever hold.
	MaxDeviceCapacity bytesize.Size
	// MaxDevicePool is the largest per-GPU free pool on the node.
	MaxDevicePool bytesize.Size
	// TotalFree sums free pool across the node's GPUs.
	TotalFree bytesize.Size
}

// Strategy selects a node for a container. Place returns a node index
// or -1 when no node can ever hold the limit.
type Strategy interface {
	Name() string
	Place(limit bytesize.Size, nodes []NodeInfo) int
}

// Strategy names (Docker Swarm's vocabulary).
const (
	StrategySpread  = "spread"
	StrategyBinpack = "binpack"
	StrategyRandom  = "random"
)

// StrategyNames lists the strategies.
func StrategyNames() []string {
	return []string{StrategySpread, StrategyBinpack, StrategyRandom}
}

// NewStrategy constructs a strategy by name; seed only affects random.
func NewStrategy(name string, seed int64) (Strategy, error) {
	switch strings.ToLower(name) {
	case StrategySpread:
		return Spread{}, nil
	case StrategyBinpack:
		return Binpack{}, nil
	case StrategyRandom, "rand":
		return NewRandomStrategy(seed), nil
	default:
		return nil, fmt.Errorf("cluster: unknown strategy %q", name)
	}
}

// Spread picks the node with the fewest containers (ties: most total
// free memory) among nodes that can ever hold the limit.
type Spread struct{}

// Name implements Strategy.
func (Spread) Name() string { return StrategySpread }

// Place implements Strategy.
func (Spread) Place(limit bytesize.Size, nodes []NodeInfo) int {
	best := -1
	for _, n := range nodes {
		if n.MaxDeviceCapacity < limit {
			continue
		}
		if best == -1 ||
			n.Containers < nodes[best].Containers ||
			(n.Containers == nodes[best].Containers && n.TotalFree > nodes[best].TotalFree) {
			best = n.Index
		}
	}
	return best
}

// Binpack picks the most loaded node whose largest free GPU pool still
// covers the whole limit, falling back to spread when none fits.
type Binpack struct{}

// Name implements Strategy.
func (Binpack) Name() string { return StrategyBinpack }

// Place implements Strategy.
func (Binpack) Place(limit bytesize.Size, nodes []NodeInfo) int {
	best := -1
	for _, n := range nodes {
		if n.MaxDeviceCapacity < limit || n.MaxDevicePool < limit {
			continue
		}
		if best == -1 || n.Containers > nodes[best].Containers {
			best = n.Index
		}
	}
	if best != -1 {
		return best
	}
	return Spread{}.Place(limit, nodes)
}

// RandomStrategy places uniformly among nodes that can ever hold the
// limit; seeded for reproducible experiments.
type RandomStrategy struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandomStrategy builds a seeded random strategy.
func NewRandomStrategy(seed int64) *RandomStrategy {
	return &RandomStrategy{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Strategy.
func (*RandomStrategy) Name() string { return StrategyRandom }

// Place implements Strategy.
func (r *RandomStrategy) Place(limit bytesize.Size, nodes []NodeInfo) int {
	var eligible []int
	for _, n := range nodes {
		if n.MaxDeviceCapacity >= limit {
			eligible = append(eligible, n.Index)
		}
	}
	if len(eligible) == 0 {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return eligible[r.rng.Intn(len(eligible))]
}

// Config assembles a cluster.
type Config struct {
	// Nodes is the number of nodes (required, >= 1).
	Nodes int
	// GPUsPerNode is the GPU count per node (required, >= 1).
	GPUsPerNode int
	// CapacityPerGPU is each GPU's schedulable memory.
	CapacityPerGPU bytesize.Size
	// Algorithm is the per-GPU redistribution algorithm name.
	Algorithm string
	// AlgorithmFactory, when non-nil, supplies each GPU's wake-order
	// algorithm instead of resolving Algorithm by name — the policy
	// registry's construction path. Called per GPU with its seed.
	AlgorithmFactory func(seed int64) (core.Algorithm, error)
	// AlgSeed seeds the Random redistribution algorithm.
	AlgSeed int64
	// DevicePolicy places containers on GPUs within a node (default
	// least-loaded).
	DevicePolicy string
	// DevicePolicyFactory, when non-nil, supplies each node's device
	// placement policy instead of resolving DevicePolicy by name —
	// called once per node, so stateful policies (round-robin) stay
	// per-node like the string path builds them.
	DevicePolicyFactory func() (multigpu.Policy, error)
	// Strategy places containers on nodes (default spread).
	Strategy Strategy
	// Clock is shared by every scheduler in the cluster.
	Clock clock.Clock
	// ContextOverhead per process (default 66 MiB).
	ContextOverhead bytesize.Size
}

// Cluster routes containers to per-node ConVGPU schedulers. All
// per-container forwarding and whole-cluster aggregation comes from the
// shared core.Router (the same plane multigpu.State routes devices
// with); the cluster layer itself only decides node placement. Cluster
// implements core.Scheduler — Placement reports the GPU within the
// owning node; NodePlacement adds which node that is.
type Cluster struct {
	*core.Router
	names    []string
	strategy Strategy
	cfg      Config // retained to build replacement members at failover
	clk      clock.Clock

	// regMu serializes placement decisions (see multigpu.State.Register)
	// and failovers: FailNode migrates containers under it, so a report
	// is atomic with respect to new registrations.
	regMu sync.Mutex

	// nodeMu guards the membership view (leaf lock: never held while
	// calling into members or the router).
	nodeMu     sync.Mutex
	states     []core.NodeState
	failovers  []uint64
	onFailover func(core.FailoverReport)

	// health is the probe loop's lifecycle (see StartHealth).
	healthMu   sync.Mutex
	healthStop chan struct{}
	healthDone chan struct{}
}

var _ core.Scheduler = (*Cluster)(nil)

// New builds a cluster of identical nodes.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.GPUsPerNode < 1 {
		return nil, fmt.Errorf("cluster: need at least one GPU per node, got %d", cfg.GPUsPerNode)
	}
	if cfg.Strategy == nil {
		cfg.Strategy = Spread{}
	}
	devPolicyName := cfg.DevicePolicy
	if devPolicyName == "" {
		devPolicyName = multigpu.PolicyLeastLoaded
	}
	cfg.DevicePolicy = devPolicyName
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	c := &Cluster{
		names:     make([]string, 0, cfg.Nodes),
		strategy:  cfg.Strategy,
		cfg:       cfg,
		clk:       clk,
		states:    make([]core.NodeState, cfg.Nodes),
		failovers: make([]uint64, cfg.Nodes),
	}
	members := make([]core.Scheduler, 0, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		sched, err := c.newMember(i)
		if err != nil {
			return nil, err
		}
		members = append(members, sched)
		c.names = append(c.names, fmt.Sprintf("node-%d", i))
	}
	c.Router = core.NewRouter(members, "node")
	return c, nil
}

// newMember builds node i's scheduler. The failover path calls it again
// to fill a dead node's slot: the same seed offset rebuilds the node
// exactly as it started, so a revived node is indistinguishable from a
// freshly booted one (and the model oracle can mirror the reset).
func (c *Cluster) newMember(i int) (core.Scheduler, error) {
	var pol multigpu.Policy
	var err error
	if c.cfg.DevicePolicyFactory != nil {
		pol, err = c.cfg.DevicePolicyFactory()
	} else {
		pol, err = multigpu.NewPolicy(c.cfg.DevicePolicy)
	}
	if err != nil {
		return nil, err
	}
	return multigpu.New(multigpu.Config{
		Devices:           c.cfg.GPUsPerNode,
		CapacityPerDevice: c.cfg.CapacityPerGPU,
		Algorithm:         c.cfg.Algorithm,
		AlgorithmFactory:  c.cfg.AlgorithmFactory,
		AlgSeed:           c.cfg.AlgSeed + int64(i)*100,
		Policy:            pol,
		Clock:             c.cfg.Clock,
		ContextOverhead:   c.cfg.ContextOverhead,
	})
}

// Nodes reports per-node summaries.
func (c *Cluster) Nodes() []NodeInfo {
	out := make([]NodeInfo, c.NumMembers())
	for i := range out {
		info := NodeInfo{Index: i, Name: c.names[i]}
		for _, d := range c.Member(i).Devices() {
			info.Containers += d.Containers
			info.TotalFree += d.PoolFree
			if d.Capacity > info.MaxDeviceCapacity {
				info.MaxDeviceCapacity = d.Capacity
			}
			if d.PoolFree > info.MaxDevicePool {
				info.MaxDevicePool = d.PoolFree
			}
		}
		out[i] = info
	}
	return out
}

// StrategyName returns the active strategy's name.
func (c *Cluster) StrategyName() string { return c.strategy.Name() }

// Register places the container on a node (strategy) and GPU (node
// policy) and registers it with that GPU's scheduler. Only nodes the
// membership view considers eligible (up or suspect) are offered to the
// strategy: draining nodes refuse new registrations, and down nodes
// hold no capacity. With no eligible node at all, admission fails
// closed with ErrDaemonUnavailable.
func (c *Cluster) Register(id core.ContainerID, limit bytesize.Size) (bytesize.Size, error) {
	return c.RegisterTenant(id, limit, core.Tenant{})
}

// RegisterTenant is Register carrying a tenant identity, forwarded to
// the chosen node's scheduler.
func (c *Cluster) RegisterTenant(id core.ContainerID, limit bytesize.Size, t core.Tenant) (bytesize.Size, error) {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	if n, err := c.PlacementIndex(id); err == nil {
		return c.Member(n).RegisterTenant(id, limit, t)
	}
	nodes, anyEligible := c.eligibleNodes()
	if !anyEligible {
		return 0, fmt.Errorf("%w: no node accepting registrations", errs.ErrDaemonUnavailable)
	}
	node := c.strategy.Place(limit, nodes)
	if node < 0 || node >= c.NumMembers() || !c.eligible(node) {
		return 0, fmt.Errorf("%w: no node can hold a %v container", core.ErrLimitExceedsCapacity, limit)
	}
	granted, err := c.Member(node).RegisterTenant(id, limit, t)
	if err != nil {
		return 0, err
	}
	c.SetPlacement(id, node)
	return granted, nil
}

// EnsureRegistered routes to the recorded node when the container is
// known and places it afresh otherwise.
func (c *Cluster) EnsureRegistered(id core.ContainerID, limit bytesize.Size) (bytesize.Size, error) {
	return c.EnsureRegisteredTenant(id, limit, core.Tenant{})
}

// EnsureRegisteredTenant is EnsureRegistered carrying a tenant
// identity.
func (c *Cluster) EnsureRegisteredTenant(id core.ContainerID, limit bytesize.Size, t core.Tenant) (bytesize.Size, error) {
	if n, err := c.PlacementIndex(id); err == nil {
		return c.Member(n).EnsureRegisteredTenant(id, limit, t)
	}
	return c.RegisterTenant(id, limit, t)
}

// RestorePlacement pins a recovering container onto a node that serves
// the recorded device, like the router's version but skipping nodes
// that are down or draining — session recovery must not re-admit
// containers onto a node that refuses new work.
func (c *Cluster) RestorePlacement(id core.ContainerID, device int) error {
	if n, err := c.PlacementIndex(id); err == nil {
		return c.Member(n).RestorePlacement(id, device)
	}
	for i := 0; i < c.NumMembers(); i++ {
		if !c.eligible(i) {
			continue
		}
		if err := c.Member(i).RestorePlacement(id, device); err == nil {
			c.SetPlacement(id, i)
			return nil
		}
	}
	return fmt.Errorf("%w: %d (no eligible node serves it)", core.ErrUnknownDevice, device)
}

// NodePlacement reports the node and GPU a container lives on.
func (c *Cluster) NodePlacement(id core.ContainerID) (node, device int, err error) {
	node, err = c.PlacementIndex(id)
	if err != nil {
		return -1, -1, err
	}
	device, err = c.Member(node).Placement(id)
	return node, device, err
}
