package cluster

import (
	"testing"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
	"convgpu/internal/core"
	"convgpu/internal/sim"
	"convgpu/internal/workload"
)

func mib(n int) bytesize.Size { return bytesize.Size(n) * bytesize.MiB }

func nodes(containersAndFree ...int) []NodeInfo {
	// Pairs: containers, totalFree (MiB). MaxDeviceCapacity fixed 5120,
	// MaxDevicePool = totalFree for simplicity.
	var out []NodeInfo
	for i := 0; i+1 < len(containersAndFree); i += 2 {
		out = append(out, NodeInfo{
			Index:             i / 2,
			Containers:        containersAndFree[i],
			TotalFree:         mib(containersAndFree[i+1]),
			MaxDevicePool:     mib(containersAndFree[i+1]),
			MaxDeviceCapacity: mib(5120),
		})
	}
	return out
}

func TestNewStrategy(t *testing.T) {
	for _, name := range []string{"spread", "binpack", "random", "rand"} {
		if _, err := NewStrategy(name, 1); err != nil {
			t.Errorf("NewStrategy(%q): %v", name, err)
		}
	}
	if _, err := NewStrategy("magic", 1); err == nil {
		t.Error("unknown strategy accepted")
	}
	if len(StrategyNames()) != 3 {
		t.Errorf("StrategyNames() = %v", StrategyNames())
	}
}

func TestSpreadFewestContainers(t *testing.T) {
	if got := (Spread{}).Place(mib(100), nodes(3, 500, 1, 200, 2, 900)); got != 1 {
		t.Fatalf("spread = %d, want 1 (fewest containers)", got)
	}
	// Ties break by free memory.
	if got := (Spread{}).Place(mib(100), nodes(1, 200, 1, 900)); got != 1 {
		t.Fatalf("spread tie = %d, want 1 (more free)", got)
	}
}

func TestSpreadSkipsIncapableNodes(t *testing.T) {
	ns := nodes(0, 100, 5, 5000)
	ns[0].MaxDeviceCapacity = mib(50)
	if got := (Spread{}).Place(mib(100), ns); got != 1 {
		t.Fatalf("spread = %d, want 1 (node 0 too small)", got)
	}
	ns[1].MaxDeviceCapacity = mib(50)
	if got := (Spread{}).Place(mib(100), ns); got != -1 {
		t.Fatalf("impossible spread = %d, want -1", got)
	}
}

func TestBinpackMostLoadedThatFits(t *testing.T) {
	if got := (Binpack{}).Place(mib(100), nodes(3, 500, 1, 200, 2, 900)); got != 0 {
		t.Fatalf("binpack = %d, want 0 (most loaded fitting)", got)
	}
	// Nothing fits fully: spread fallback.
	if got := (Binpack{}).Place(mib(1000), nodes(3, 500, 1, 200, 2, 900)); got != 1 {
		t.Fatalf("binpack fallback = %d, want 1", got)
	}
}

func TestRandomStrategyDeterministicAndEligible(t *testing.T) {
	ns := nodes(0, 100, 0, 100, 0, 100)
	ns[1].MaxDeviceCapacity = mib(10) // ineligible for 100 MiB
	a := NewRandomStrategy(3)
	b := NewRandomStrategy(3)
	for i := 0; i < 50; i++ {
		pa := a.Place(mib(100), ns)
		pb := b.Place(mib(100), ns)
		if pa != pb {
			t.Fatalf("same seed diverged at %d", i)
		}
		if pa == 1 {
			t.Fatal("random placed on ineligible node")
		}
	}
	if got := NewRandomStrategy(1).Place(mib(100), nil); got != -1 {
		t.Fatalf("random on empty = %d, want -1", got)
	}
}

func newCluster(t *testing.T, nodes, gpus int, strat Strategy) *Cluster {
	t.Helper()
	c, err := New(Config{
		Nodes:           nodes,
		GPUsPerNode:     gpus,
		CapacityPerGPU:  mib(1000),
		Strategy:        strat,
		ContextOverhead: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0, GPUsPerNode: 1, CapacityPerGPU: mib(10)}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := New(Config{Nodes: 1, GPUsPerNode: 0, CapacityPerGPU: mib(10)}); err == nil {
		t.Error("zero gpus accepted")
	}
	if _, err := New(Config{Nodes: 1, GPUsPerNode: 1, CapacityPerGPU: mib(10), DevicePolicy: "zzz"}); err == nil {
		t.Error("bad device policy accepted")
	}
	c, err := New(Config{Nodes: 2, GPUsPerNode: 1, CapacityPerGPU: mib(10)})
	if err != nil {
		t.Fatal(err)
	}
	if c.StrategyName() != StrategySpread {
		t.Errorf("default strategy = %q", c.StrategyName())
	}
}

func TestClusterRegisterSpreads(t *testing.T) {
	c := newCluster(t, 3, 1, Spread{})
	for i := 0; i < 3; i++ {
		if _, err := c.Register(core.ContainerID(string(rune('a'+i))), mib(500)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range c.Nodes() {
		if n.Containers != 1 {
			t.Fatalf("node %d has %d containers, want 1 each: %+v", n.Index, n.Containers, c.Nodes())
		}
	}
	node, dev, err := c.NodePlacement("a")
	if err != nil || node < 0 || dev != 0 {
		t.Fatalf("placement = (%d,%d,%v)", node, dev, err)
	}
}

func TestClusterForwarding(t *testing.T) {
	c := newCluster(t, 2, 2, Spread{})
	if _, err := c.Register("a", mib(500)); err != nil {
		t.Fatal(err)
	}
	res, err := c.RequestAlloc("a", 1, mib(100))
	if err != nil || res.Decision != core.Accept {
		t.Fatalf("alloc: %+v %v", res, err)
	}
	if err := c.ConfirmAlloc("a", 1, 0xA, mib(100)); err != nil {
		t.Fatal(err)
	}
	if _, total, err := c.MemInfo("a"); err != nil || total != mib(500) {
		t.Fatalf("meminfo total = %v err=%v", total, err)
	}
	if info, err := c.Info("a"); err != nil || info.Used != mib(100)+1 {
		t.Fatalf("info = %+v %v", info, err)
	}
	if size, _, err := c.Free("a", 1, 0xA); err != nil || size != mib(100) {
		t.Fatalf("free = %v %v", size, err)
	}
	if _, _, err := c.ProcessExit("a", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Close("a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.NodePlacement("a"); err == nil {
		t.Fatal("placement survives close")
	}
	if _, err := c.RequestAlloc("ghost", 1, 1); err == nil {
		t.Fatal("unknown container accepted")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterRejectsImpossibleLimit(t *testing.T) {
	c := newCluster(t, 2, 1, Spread{})
	if _, err := c.Register("big", mib(2000)); err == nil {
		t.Fatal("impossible limit accepted")
	}
}

// TestSimOverCluster: a 2-node x 1-GPU cluster beats a single node on a
// contended trace.
func TestSimOverCluster(t *testing.T) {
	trace := workload.GenerateTrace(24, workload.DefaultSpacing, 55)
	run := func(nodes int) sim.Result {
		clk := clock.NewManual()
		c, err := New(Config{
			Nodes:          nodes,
			GPUsPerNode:    1,
			CapacityPerGPU: 5 * bytesize.GiB,
			Algorithm:      core.AlgBestFit,
			Strategy:       Spread{},
			Clock:          clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunWith(trace, c, clk, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	two := run(2)
	if two.FinishTime >= one.FinishTime {
		t.Fatalf("2 nodes (%v) not faster than 1 (%v)", two.FinishTime, one.FinishTime)
	}
}
