package protocol

import (
	"bytes"
	"reflect"
	"testing"
)

// binarySampleMessages cover every field and every verb with a binary
// form, including the exact shapes the hot path sends.
func binarySampleMessages() []*Message {
	return []*Message{
		{Type: TypeAlloc, Seq: 7, PID: 41, Size: 4 << 20, API: "cudaMalloc"},
		{Type: TypeConfirm, Seq: 8, PID: 41, Size: 4 << 20, Addr: 0xdeadbeef},
		{Type: TypeFree, Seq: 9, PID: 41, Addr: 0xdeadbeef, API: "cudaFree"},
		{Type: TypeRegister, Seq: 1, Container: "c1", Limit: 512 << 20},
		{Type: TypeClose, Seq: 2, Container: "c1"},
		{Type: TypeProcExit, Seq: 3, PID: 41},
		{Type: TypeMemInfo, Seq: 4},
		{Type: TypeAttach, Seq: 5, PID: 41},
		{Type: TypeRestore, Seq: 6, PID: 41, Addr: 160, Size: 100 << 20},
		{Type: TypeHeartbeat, Seq: 12, PID: 2},
		{Type: TypeCodec, Seq: 1, Data: BinaryCodecToken},
		{Type: TypeResponse, Seq: 7, OK: true, Decision: DecisionAccept},
		{Type: TypeResponse, Seq: 8, OK: true, Free: 1 << 30, Total: 2 << 30},
		{Type: TypeResponse, Seq: 9, Error: "over limit", Code: CodeRejected},
		{Type: TypeResponse, Seq: 10, OK: true, Granted: 256 << 20, SocketDir: "/tmp/convgpu/c1", Device: 3},
		{Type: TypeResponse, Seq: 11, OK: true, Data: `{"k":"v"}`},
		{Type: TypeResponse, Seq: 1<<64 - 1, Error: "a \"quoted\" \\ path\nline é☃😀"},
		{Type: TypeConfirm, Seq: 2, PID: 1, Addr: 1<<64 - 1, Size: 1},
		{Type: TypeAlloc, Seq: 0, PID: 1, Size: 1},
	}
}

// decodeBinaryFrame runs the full receive path on one encoded frame.
func decodeBinaryFrame(t *testing.T, frame []byte) *Message {
	t.Helper()
	op, n, seq, err := ParseBinaryHeader(frame)
	if err != nil {
		t.Fatalf("header: %v (% x)", err, frame)
	}
	if BinaryHeaderSize+n != len(frame) {
		t.Fatalf("length field %d does not frame %d bytes", n, len(frame))
	}
	m := new(Message)
	if err := DecodeBinaryInto(m, op, seq, frame[BinaryHeaderSize:]); err != nil {
		t.Fatalf("payload: %v (% x)", err, frame)
	}
	return m
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, in := range binarySampleMessages() {
		frame, ok := AppendEncodeBinary(nil, in)
		if !ok {
			t.Fatalf("message not representable: %+v", in)
		}
		out := decodeBinaryFrame(t, frame)
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip changed the message:\n in %+v\nout %+v", in, out)
		}
	}
}

// TestBinaryAgreesWithJSON sends each sample through both codecs: the
// framing differs, the message must not.
func TestBinaryAgreesWithJSON(t *testing.T) {
	for _, in := range binarySampleMessages() {
		frame, ok := AppendEncodeBinary(nil, in)
		if !ok {
			t.Fatalf("message not representable: %+v", in)
		}
		viaBinary := decodeBinaryFrame(t, frame)
		viaJSON := new(Message)
		if err := DecodeInto(viaJSON, bytes.TrimSuffix(AppendEncode(nil, in), []byte("\n"))); err != nil {
			t.Fatalf("json round trip: %v", err)
		}
		if !reflect.DeepEqual(viaBinary, viaJSON) {
			t.Fatalf("codecs disagree:\nbinary %+v\n  json %+v", viaBinary, viaJSON)
		}
	}
}

// TestBinaryWireStability locks the frame bytes of a representative
// request: opcodes, tags, widths and the checksum rule are wire format
// shared across versions, like the JSON golden test next door.
func TestBinaryWireStability(t *testing.T) {
	m := &Message{Type: TypeAlloc, Seq: 0x0102030405060708, PID: 41, Size: 4 << 20, API: "cudaMalloc"}
	frame, ok := AppendEncodeBinary(nil, m)
	if !ok {
		t.Fatal("not representable")
	}
	want := []byte{
		0xBF, 2, // magic, opcode alloc
		31, 0, // payload length
		0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // seq LE
		0xBF ^ 2 ^ 31 ^ 0x08 ^ 0x07 ^ 0x06 ^ 0x05 ^ 0x04 ^ 0x03 ^ 0x02 ^ 0x01, // checksum
		2, 41, 0, 0, 0, 0, 0, 0, 0, // pid
		3, 0, 0, 0x40, 0, 0, 0, 0, 0, // size 4<<20
		6, 10, 0, 'c', 'u', 'd', 'a', 'M', 'a', 'l', 'l', 'o', 'c', // api
	}
	if !bytes.Equal(frame, want) {
		t.Fatalf("wire bytes drifted:\ngot  % x\nwant % x", frame, want)
	}
}

// TestBinaryHeaderCorruptionDetected flips every header byte the way
// the chaos fault injector does (XOR 0x20) and requires the parse to
// fail: a corrupted length must never send the reader after phantom
// bytes.
func TestBinaryHeaderCorruptionDetected(t *testing.T) {
	m := &Message{Type: TypeAlloc, Seq: 77, PID: 41, Size: 1 << 20}
	frame, _ := AppendEncodeBinary(nil, m)
	for i := 0; i < BinaryHeaderSize; i++ {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x20
		if _, _, _, err := ParseBinaryHeader(bad); err == nil {
			t.Fatalf("single-byte corruption at header offset %d went undetected", i)
		}
	}
}

// TestBinaryPayloadCorruptionKeepsSeq corrupts payload bytes: the
// header still parses, so the transport can echo the true seq on its
// error response — the binary analogue of ScanSeq on a mangled JSON
// line. The decode itself must either fail cleanly or yield a changed
// message, never panic.
func TestBinaryPayloadCorruptionKeepsSeq(t *testing.T) {
	m := &Message{Type: TypeAlloc, Seq: 77, PID: 41, Size: 1 << 20, API: "cudaMalloc"}
	frame, _ := AppendEncodeBinary(nil, m)
	for i := BinaryHeaderSize; i < len(frame); i++ {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x20
		op, n, seq, err := ParseBinaryHeader(bad)
		if err != nil {
			t.Fatalf("payload corruption at %d broke the header: %v", i, err)
		}
		if seq != 77 || n != len(frame)-BinaryHeaderSize {
			t.Fatalf("header fields changed by payload corruption at %d", i)
		}
		out := new(Message)
		_ = DecodeBinaryInto(out, op, seq, bad[BinaryHeaderSize:]) // must not panic
	}
}

func TestBinaryMalformedPayloads(t *testing.T) {
	m := new(Message)
	cases := []struct {
		name    string
		op      byte
		payload []byte
	}{
		{"unknown tag", 2, []byte{99}},
		{"truncated int", 2, []byte{tagPID, 1, 2}},
		{"truncated string length", 2, []byte{tagAPI, 4}},
		{"string past end", 2, []byte{tagAPI, 255, 0, 'x'}},
		{"truncated decision", 16, []byte{tagDecision}},
		{"bad decision byte", 16, []byte{tagDecision, 9}},
		{"bad opcode", 200, nil},
		{"validate fails", 2, nil}, // alloc without pid/size
	}
	for _, c := range cases {
		if err := DecodeBinaryInto(m, c.op, 1, c.payload); err == nil {
			t.Errorf("%s: decode accepted", c.name)
		}
	}
}

func TestBinaryUnrepresentable(t *testing.T) {
	big := string(make([]byte, MaxBinaryPayload+1))
	cases := []*Message{
		{Type: "bogus", Seq: 1},
		{Type: TypeResponse, Seq: 1, Decision: "maybe"},
		{Type: TypeResponse, Seq: 1, Data: big},
	}
	for _, m := range cases {
		prefix := []byte("keep")
		out, ok := AppendEncodeBinary(prefix, m)
		if ok {
			t.Errorf("encoded unrepresentable message %+v", m)
		}
		if !bytes.Equal(out, prefix) {
			t.Errorf("failed encode did not restore dst for %+v", m)
		}
	}
}

// TestBinaryZeroAlloc proves the hot-path contract: encode into a
// pooled buffer and decode into a pooled message allocate nothing for
// the verbs the wrapper sends every CUDA call.
func TestBinaryZeroAlloc(t *testing.T) {
	req := &Message{Type: TypeAlloc, Seq: 7, PID: 41, Size: 4 << 20, API: "cudaMalloc"}
	resp := &Message{Type: TypeResponse, Seq: 7, OK: true, Decision: DecisionAccept, Free: 1 << 30}
	for _, m := range []*Message{req, resp} {
		buf := make([]byte, 0, 256)
		frame, _ := AppendEncodeBinary(buf, m)
		op, _, seq, err := ParseBinaryHeader(frame)
		if err != nil {
			t.Fatal(err)
		}
		payload := append([]byte(nil), frame[BinaryHeaderSize:]...)
		out := new(Message)
		if n := testing.AllocsPerRun(200, func() {
			if _, ok := AppendEncodeBinary(buf, m); !ok {
				t.Fatal("encode failed")
			}
		}); n != 0 {
			t.Errorf("encode of %+v allocates %.1f/op", m, n)
		}
		if n := testing.AllocsPerRun(200, func() {
			if err := DecodeBinaryInto(out, op, seq, payload); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("decode of %+v allocates %.1f/op", m, n)
		}
	}
}
