package protocol

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"convgpu/internal/bytesize"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Type: TypeRegister, Seq: 1, Container: "c1", Limit: int64(512 * bytesize.MiB)},
		{Type: TypeAlloc, Seq: 2, Container: "c1", PID: 41, Size: 4096, API: "cudaMalloc"},
		{Type: TypeConfirm, Seq: 3, PID: 41, Size: 4096, Addr: 0xdeadbeef},
		{Type: TypeFree, Seq: 4, PID: 41, Addr: 0xdeadbeef},
		{Type: TypeProcExit, Seq: 5, PID: 41},
		{Type: TypeClose, Seq: 6, Container: "c1"},
		{Type: TypeMemInfo, Seq: 7, Container: "c1"},
		{Type: TypeResponse, Seq: 7, OK: true, Free: 100, Total: 200},
		{Type: TypeResponse, Seq: 2, OK: true, Decision: DecisionAccept},
		{Type: TypeResponse, Seq: 9, OK: false, Error: "boom"},
	}
	for _, m := range msgs {
		b, err := Encode(m)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", m, err)
		}
		if b[len(b)-1] != '\n' {
			t.Fatalf("Encode(%s) missing trailing newline", m.Type)
		}
		if bytes.ContainsRune(b[:len(b)-1], '\n') {
			t.Fatalf("Encode(%s) contains interior newline", m.Type)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(Encode(%+v)): %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, m)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"", "{", "null", `"str"`, `{"type":"nope"}`, `{"seq":1}`,
	} {
		if m, err := Decode([]byte(in)); err == nil {
			t.Errorf("Decode(%q) = %+v, want error", in, m)
		}
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		m    Message
		ok   bool
	}{
		{"register ok", Message{Type: TypeRegister, Container: "c", Limit: 1}, true},
		{"register no container", Message{Type: TypeRegister, Limit: 1}, false},
		{"register zero limit", Message{Type: TypeRegister, Container: "c"}, false},
		{"register negative limit", Message{Type: TypeRegister, Container: "c", Limit: -5}, false},
		{"alloc ok", Message{Type: TypeAlloc, PID: 1, Size: 1}, true},
		{"alloc zero size", Message{Type: TypeAlloc, PID: 1}, false},
		{"alloc no pid", Message{Type: TypeAlloc, Size: 1}, false},
		{"confirm ok", Message{Type: TypeConfirm, PID: 1, Size: 1}, true},
		{"confirm no size", Message{Type: TypeConfirm, PID: 1}, false},
		{"free ok", Message{Type: TypeFree, PID: 1}, true},
		{"free no pid", Message{Type: TypeFree}, false},
		{"procexit ok", Message{Type: TypeProcExit, PID: 9}, true},
		{"procexit no pid", Message{Type: TypeProcExit}, false},
		{"close ok", Message{Type: TypeClose, Container: "c"}, true},
		{"close no container", Message{Type: TypeClose}, false},
		{"meminfo ok", Message{Type: TypeMemInfo}, true},
		{"response ok", Message{Type: TypeResponse}, true},
		{"empty type", Message{}, false},
		{"unknown type", Message{Type: "bogus"}, false},
	}
	for _, c := range cases {
		err := c.m.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() err = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestResponseHelpers(t *testing.T) {
	req := &Message{Type: TypeAlloc, Seq: 99, PID: 1, Size: 10}
	r := Response(req)
	if r.Type != TypeResponse || r.Seq != 99 || !r.OK {
		t.Fatalf("Response(req) = %+v", r)
	}
	e := ErrorResponse(req, "bad %s %d", "thing", 7)
	if e.Type != TypeResponse || e.Seq != 99 || e.OK || e.Error != "bad thing 7" {
		t.Fatalf("ErrorResponse(req) = %+v", e)
	}
}

func TestSizeAccessors(t *testing.T) {
	m := &Message{Size: int64(3 * bytesize.MiB), Limit: int64(bytesize.GiB)}
	if m.SizeBytes() != 3*bytesize.MiB {
		t.Errorf("SizeBytes = %v", m.SizeBytes())
	}
	if m.LimitBytes() != bytesize.GiB {
		t.Errorf("LimitBytes = %v", m.LimitBytes())
	}
}

// Property: every structurally valid alloc message survives an
// encode/decode round trip bit-exactly.
func TestAllocRoundTripProperty(t *testing.T) {
	f := func(seq uint64, pid uint16, size uint32, addr uint64, api string) bool {
		m := &Message{
			Type: TypeAlloc,
			Seq:  seq,
			PID:  int(pid) + 1,
			Size: int64(size) + 1,
			Addr: addr,
			API:  api,
		}
		b, err := Encode(m)
		if err != nil {
			// Only non-UTF8 API strings may fail to marshal; treat as pass
			// when the input string is invalid UTF-8.
			return true
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		// JSON round-trips invalid UTF-8 lossily; compare the numeric
		// fields which are the protocol-critical part.
		return got.Seq == m.Seq && got.PID == m.PID && got.Size == m.Size && got.Addr == m.Addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
