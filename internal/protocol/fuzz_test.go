package protocol

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"unicode/utf8"
)

// fuzzSeedLines are wire frames the codec is known to handle — taken
// from the deterministic codec tests plus real daemon traffic shapes —
// so the fuzzer starts from inputs that reach deep into the scanner
// instead of bouncing off the '{' check.
var fuzzSeedLines = []string{
	`{"type":"alloc","seq":7,"pid":41,"size":4194304,"api":"cudaMalloc"}`,
	`{"type":"register","seq":1,"container":"c1","limit":536870912}`,
	`{"type":"response","seq":7,"ok":true,"decision":"accept"}`,
	`{"type":"response","seq":9,"error":"a \"quoted\" \\ path\nline"}`,
	`{"type":"response","seq":1,"error":"Aé☃"}`,
	`{"type":"response","seq":1,"error":"😀"}`,
	"  {  \"type\" : \"meminfo\" , \"seq\" : 3 }  ",
	`{"type":"close","container":"c","future_field":"ignored","seq":9}`,
	`{"type":"close","container":"c","n":null,"b":false,"x":3.25}`,
	`{"type":"free","pid":1,"size":-12}`,
	`{"type":"confirm","seq":2,"pid":1,"addr":18446744073709551615,"size":1}`,
	`{"type":"restore","pid":1,"addr":160,"size":104857600}`,
	`{"type":"heartbeat","seq":12,"pid":2}`,
	`{"type":"stats","seq":3}`,
	`{"type":"close","container":"c","extra":{"nested":1}}`,
	`{"type":"meminfo","seq":1e2}`,
	`{"seq":}`,
	`{"type":"close","container":"c","seq":18446744073709551616}`,
	"",
	"{",
	"null",
}

// FuzzDecode throws arbitrary bytes at the pooled decoder. It must
// never panic, and anything it accepts must survive a re-encode /
// re-decode cycle byte-for-value: the encoder and the scanner are a
// closed loop over every message the decoder lets through.
func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeedLines {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		line := AppendEncode(nil, m)
		if len(line) == 0 || line[len(line)-1] != '\n' || bytes.ContainsRune(line[:len(line)-1], '\n') {
			t.Fatalf("bad framing for re-encoded %+v: %q", m, line)
		}
		m2, err := Decode(bytes.TrimSuffix(line, []byte("\n")))
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v (%q)", err, line)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode/encode/decode not stable:\n in %+v\nout %+v\nline %q", m, m2, line)
		}
		// The stdlib must agree with our encoder whenever the strings are
		// valid UTF-8 (invalid bytes pass through our codec byte-exact but
		// encoding/json substitutes replacement runes on decode).
		if utf8.Valid(data) {
			var std Message
			if err := json.Unmarshal(line, &std); err != nil {
				t.Fatalf("stdlib rejects our encoding of %+v: %v (%q)", m, err, line)
			}
			if !reflect.DeepEqual(&std, m) {
				t.Fatalf("stdlib disagrees with scanner:\nstd  %+v\nours %+v\nline %q", &std, m, line)
			}
		}
	})
}

// FuzzEncodeDecodeRoundTrip drives the encoder with arbitrary field
// values. Valid messages must round-trip exactly through the pooled
// buffer path; messages failing Validate must be rejected on decode
// too — the two ends of the socket apply the same rules.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add("alloc", uint64(7), int64(41), int64(4<<20), int64(0), uint64(0), "", "cudaMalloc", "", true, "accept")
	f.Add("register", uint64(1), int64(1), int64(0), int64(512<<20), uint64(0), "c1", "", "", false, "")
	f.Add("response", uint64(9), int64(0), int64(0), int64(0), uint64(0), "", "", "a \"quoted\" \\ path\nline", false, "reject")
	f.Add("confirm", uint64(2), int64(1), int64(1), int64(0), uint64(1)<<63, "", "", "", false, "")
	f.Add("bogus", uint64(0), int64(-1), int64(-1), int64(-1), uint64(0), "\x00", "\xff\xfe", "é☃😀", true, "suspend")
	f.Fuzz(func(t *testing.T, typ string, seq uint64, pid, size, limit int64, addr uint64,
		container, api, errText string, ok bool, decision string) {
		in := AcquireMessage()
		defer ReleaseMessage(in)
		in.Type = Type(typ)
		in.Seq = seq
		in.Container = container
		in.PID = int(pid)
		in.Size = size
		in.Limit = limit
		in.Addr = addr
		in.API = api
		in.OK = ok
		in.Error = errText
		in.Decision = Decision(decision)

		buf := AcquireBuffer()
		defer ReleaseBuffer(buf)
		*buf = AppendEncode((*buf)[:0], in)
		line := *buf
		if len(line) == 0 || line[len(line)-1] != '\n' || bytes.ContainsRune(line[:len(line)-1], '\n') {
			t.Fatalf("bad framing: %q", line)
		}

		out := AcquireMessage()
		defer ReleaseMessage(out)
		err := DecodeInto(out, bytes.TrimSuffix(line, []byte("\n")))
		if verr := in.Validate(); verr != nil {
			if err == nil {
				t.Fatalf("decoder accepted a message the validator rejects (%v): %+v", verr, in)
			}
			return
		}
		if err != nil {
			t.Fatalf("round trip failed: %v (%q)", err, line)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip changed the message:\n in %+v\nout %+v\nline %q", in, out, line)
		}
	})
}
