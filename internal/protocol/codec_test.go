package protocol

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// TestAppendEncodeMatchesStdlibDecode checks the hand-rolled encoder
// differentially: everything it emits must decode identically through
// encoding/json.
func TestAppendEncodeMatchesStdlibDecode(t *testing.T) {
	f := func(seq uint64, pid int32, size, limit, granted, free, total int64, addr uint64,
		container, api, errText, sockDir string, ok bool) bool {
		m := &Message{
			Type: TypeResponse, Seq: seq, Container: container, PID: int(pid),
			Size: size, Limit: limit, Addr: addr, API: api, OK: ok,
			Error: errText, Decision: DecisionAccept, Granted: granted,
			SocketDir: sockDir, Free: free, Total: total,
		}
		line := AppendEncode(nil, m)
		if line[len(line)-1] != '\n' || bytes.ContainsRune(line[:len(line)-1], '\n') {
			t.Logf("bad framing: %q", line)
			return false
		}
		var std Message
		if err := json.Unmarshal(line, &std); err != nil {
			// encoding/json rejects invalid UTF-8 only on encode, never on
			// decode, so any unmarshal failure is an encoder bug.
			t.Logf("stdlib rejects our encoding of %+v: %v (%q)", m, err, line)
			return false
		}
		// Invalid UTF-8 passes through our encoder byte-exact but the
		// stdlib decoder replaces stray surrogates; compare through the
		// scanner in that case instead.
		var ours Message
		if !scanMessage(&ours, line) {
			t.Logf("own scanner rejects own encoding %q", line)
			return false
		}
		return reflect.DeepEqual(&ours, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDecodeMatchesStdlib feeds both decoders the same stdlib-encoded
// lines: the scanner must agree with encoding/json field for field.
func TestDecodeMatchesStdlib(t *testing.T) {
	f := func(seq uint64, pid int32, size int64, addr uint64, container, api string, ok bool) bool {
		in := &Message{
			Type: TypeAlloc, Seq: seq, Container: container, PID: int(pid),
			Size: size, Addr: addr, API: api, OK: ok,
		}
		line, err := json.Marshal(in)
		if err != nil {
			return true // invalid UTF-8 input string; stdlib refuses, nothing to compare
		}
		var std, ours Message
		if err := json.Unmarshal(line, &std); err != nil {
			return true
		}
		if !scanMessage(&ours, line) {
			t.Logf("scanner rejects stdlib line %q", line)
			return false
		}
		return reflect.DeepEqual(&ours, &std)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeEscapesAndOddShapes(t *testing.T) {
	cases := []struct {
		in   string
		want Message
	}{
		{`{"type":"response","seq":7,"error":"a \"quoted\" \\ path\nline"}`,
			Message{Type: TypeResponse, Seq: 7, Error: "a \"quoted\" \\ path\nline"}},
		{`{"type":"response","seq":1,"error":"Aé☃"}`,
			Message{Type: TypeResponse, Seq: 1, Error: "Aé☃"}},
		{`{"type":"response","seq":1,"error":"😀"}`,
			Message{Type: TypeResponse, Seq: 1, Error: "😀"}},
		{"  {  \"type\" : \"meminfo\" , \"seq\" : 3 }  ",
			Message{Type: TypeMemInfo, Seq: 3}},
		{`{"type":"close","container":"c","future_field":"ignored","seq":9}`,
			Message{Type: TypeClose, Seq: 9, Container: "c"}},
		{`{"type":"close","container":"c","n":null,"b":false,"x":3.25}`,
			Message{Type: TypeClose, Container: "c"}},
		{`{"type":"free","pid":1,"size":-12}`,
			Message{Type: TypeFree, PID: 1, Size: -12}},
	}
	for _, c := range cases {
		got, err := Decode([]byte(c.in))
		if err != nil {
			t.Errorf("Decode(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, &c.want) {
			t.Errorf("Decode(%q)\n got %+v\nwant %+v", c.in, got, &c.want)
		}
	}
}

func TestDecodeFallbackAgreesWithStdlibErrors(t *testing.T) {
	// Shapes the fast scanner cannot handle must still behave exactly
	// like the old encoding/json-based decoder: accepted when it
	// accepted, rejected when it rejected.
	accept := []string{
		`{"type":"meminfo","seq":1e2}`,                          // exponent seq: stdlib rejects into uint64? (checked below)
		`{"type":"close","container":"c","extra":{"nested":1}}`, // nested unknown value
		`{"type":"close","container":"c","extra":[1,2]}`,        // array unknown value
	}
	for _, in := range accept {
		var std Message
		stdErr := json.Unmarshal([]byte(in), &std)
		_, ourErr := Decode([]byte(in))
		if (stdErr == nil) != (ourErr == nil) {
			// Decode also validates; only compare when stdlib accepted and
			// validation passes.
			if stdErr == nil && std.Validate() == nil {
				t.Errorf("Decode(%q) err=%v, stdlib err=%v", in, ourErr, stdErr)
			}
		}
	}
	reject := []string{
		"", "{", "null", `"str"`, `{"seq":}`, `{"type":"close","container":"c"} trailing`,
		`{"type":"close","container":"c","seq":18446744073709551616}`, // uint64 overflow
		`{"type":"close","container":"c","pid":9223372036854775808}`,  // int64 overflow
	}
	for _, in := range reject {
		if m, err := Decode([]byte(in)); err == nil {
			t.Errorf("Decode(%q) = %+v, want error", in, m)
		}
	}
}

func TestScanSeq(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{`{"type":"bogus","seq":42}`, 42},
		{`{"seq": 7 ,"type":`, 7}, // truncated line: seq still recoverable
		{`{"type":"alloc","seq":0}`, 0},
		{`not json at all`, 0},
		{`{"sequence":9}`, 0},
		{`{"seq":"nan"}`, 0},
		{`{  "seq"  :  314  }`, 314},
	}
	for _, c := range cases {
		if got := ScanSeq([]byte(c.in)); got != c.want {
			t.Errorf("ScanSeq(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestBufferPoolRoundTrip(t *testing.T) {
	buf := AcquireBuffer()
	*buf = AppendEncode(*buf, &Message{Type: TypeMemInfo, Seq: 1})
	if len(*buf) == 0 {
		t.Fatal("AppendEncode wrote nothing")
	}
	ReleaseBuffer(buf)
	// Oversized buffers must be dropped, not retained.
	big := make([]byte, 0, MaxEncodedLine+1)
	ReleaseBuffer(&big)
}

// TestPooledCodecConcurrency is the codec's aliasing stress test: many
// goroutines encode into pooled buffers and decode into pooled messages
// concurrently (run under -race). Each goroutine verifies its decoded
// message still matches its own input after a pool round trip — if a
// released message or buffer were still aliased by another goroutine,
// the race detector and the value checks would both trip.
func TestPooledCodecConcurrency(t *testing.T) {
	const goroutines = 16
	const iters = 2000
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				in := AcquireMessage()
				in.Type = TypeAlloc
				in.Seq = uint64(g)<<32 | uint64(i)
				in.PID = g + 1
				in.Size = int64(i + 1)
				in.API = "cudaMalloc"

				buf := AcquireBuffer()
				*buf = AppendEncode((*buf)[:0], in)

				out := AcquireMessage()
				if err := DecodeInto(out, bytes.TrimSuffix(*buf, []byte("\n"))); err != nil {
					errs <- err
					return
				}
				if out.Seq != in.Seq || out.PID != in.PID || out.Size != in.Size || out.API != "cudaMalloc" {
					errs <- fmt.Errorf("goroutine %d iter %d: decoded %+v from %+v", g, i, out, in)
					return
				}
				ReleaseMessage(in)
				ReleaseBuffer(buf)
				// Mutating out after releasing in must be safe: they are
				// distinct objects even when both came from the pool.
				out.Seq++
				ReleaseMessage(out)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func BenchmarkAppendEncodePooled(b *testing.B) {
	m := &Message{Type: TypeAlloc, Seq: 123456, PID: 41, Size: 4 << 20, API: "cudaMalloc"}
	buf := AcquireBuffer()
	defer ReleaseBuffer(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		*buf = AppendEncode((*buf)[:0], m)
	}
}

func BenchmarkDecodeIntoPooled(b *testing.B) {
	line := AppendEncode(nil, &Message{Type: TypeResponse, Seq: 123456, OK: true, Decision: DecisionAccept})
	m := AcquireMessage()
	defer ReleaseMessage(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(m, line); err != nil {
			b.Fatal(err)
		}
	}
}
