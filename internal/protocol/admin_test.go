package protocol

import (
	"errors"
	"testing"

	"convgpu/internal/errs"
)

// TestAfterFieldRoundTrip covers the trace page cursor through both
// codecs: the JSON fast scanner, the encoding/json fallback, and the
// binary frame must all carry it.
func TestAfterFieldRoundTrip(t *testing.T) {
	m := &Message{Type: TypeTrace, Seq: 9, Container: "c1", After: 12345}
	line, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := DecodeInto(&got, line); err != nil {
		t.Fatal(err)
	}
	if got.After != 12345 {
		t.Fatalf("JSON round trip After = %d, want 12345", got.After)
	}

	frame, ok := AppendEncodeBinary(nil, m)
	if !ok {
		t.Fatal("trace message not binary-representable")
	}
	op, plen, seq, err := ParseBinaryHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	var bin Message
	if err := DecodeBinaryInto(&bin, op, seq, frame[BinaryHeaderSize:BinaryHeaderSize+plen]); err != nil {
		t.Fatal(err)
	}
	if bin.After != 12345 || bin.Container != "c1" {
		t.Fatalf("binary round trip = %+v", bin)
	}

	// Zero cursor is omitted from the wire entirely.
	line, _ = Encode(&Message{Type: TypeTrace, Seq: 1})
	if string(line) != `{"type":"trace","seq":1}`+"\n" {
		t.Fatalf("zero After leaked onto the wire: %s", line)
	}
}

// TestSessionsOpsValidate covers the new control verbs.
func TestSessionsOpsValidate(t *testing.T) {
	for _, m := range []*Message{
		{Type: TypeSessions, Seq: 1},
		{Type: TypeSessions, Seq: 2, Container: "cursor-id", Size: 100},
		{Type: TypeOps, Seq: 3},
		{Type: TypeOps, Seq: 4, Container: "op-7"},
	} {
		if err := m.Validate(); err != nil {
			t.Errorf("Validate(%s): %v", m.Type, err)
		}
		line, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		var got Message
		if err := DecodeInto(&got, line); err != nil {
			t.Fatalf("decode %s: %v", line, err)
		}
		if got.Type != m.Type || got.Container != m.Container {
			t.Errorf("round trip %s: got %+v", m.Type, got)
		}
	}
}

// TestCodeForInvertsErrFromCode pins the error-code mapping both ways:
// every sentinel the HTTP envelope can carry must survive the trip.
func TestCodeForInvertsErrFromCode(t *testing.T) {
	for _, err := range []error{
		errs.ErrOverCapacity,
		errs.ErrRejected,
		errs.ErrDaemonUnavailable,
		errs.ErrNodeDown,
	} {
		code := CodeFor(err)
		if code == "" {
			t.Errorf("CodeFor(%v) = empty", err)
			continue
		}
		back := ErrFromCode(code)
		if !errors.Is(back, err) {
			t.Errorf("ErrFromCode(CodeFor(%v)) = %v", err, back)
		}
		// Wrapped errors map identically.
		if CodeFor(errors.Join(errors.New("ctx"), err)) != code {
			t.Errorf("CodeFor(wrapped %v) != %s", err, code)
		}
	}
	if CodeFor(nil) != "" || CodeFor(errors.New("misc")) != "" {
		t.Error("CodeFor must return empty for nil/unknown errors")
	}
}
