package protocol

import (
	"bytes"
	"testing"
)

// TestSessionMessageRoundTrip covers the session-management types the
// failure-domain layer added: attach, restore, heartbeat.
func TestSessionMessageRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Type: TypeAttach, Seq: 7, PID: 42},
		{Type: TypeRestore, Seq: 8, PID: 42, Addr: 0xBEEF, Size: 1 << 20},
		{Type: TypeHeartbeat, Seq: 9, PID: 42},
	}
	for _, m := range msgs {
		line, err := Encode(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Type, err)
		}
		got, err := Decode(bytes.TrimRight(line, "\n"))
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Type, err)
		}
		if *got != *m {
			t.Fatalf("%s: round trip = %+v, want %+v", m.Type, got, m)
		}
	}
}

// TestSessionMessageValidation: required fields of the session types.
func TestSessionMessageValidation(t *testing.T) {
	bad := []*Message{
		{Type: TypeAttach},                    // no pid
		{Type: TypeRestore, PID: 1},           // no size
		{Type: TypeRestore, PID: 1, Size: -4}, // negative size
		{Type: TypeRestore, Size: 10},         // no pid
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%+v validated", m)
		}
	}
	if err := (&Message{Type: TypeHeartbeat}).Validate(); err != nil {
		t.Errorf("bare heartbeat rejected: %v", err)
	}
}
