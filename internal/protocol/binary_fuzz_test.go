package protocol

import (
	"reflect"
	"testing"
)

// FuzzBinaryDecode throws arbitrary opcode/payload pairs at the binary
// decoder. It must never panic, and any payload it accepts must
// round-trip through the binary encoder value-for-value — the closed
// loop FuzzDecode proves for the JSON scanner.
func FuzzBinaryDecode(f *testing.F) {
	for _, m := range binarySampleMessages() {
		if frame, ok := AppendEncodeBinary(nil, m); ok {
			f.Add(frame[1], frame[BinaryHeaderSize:])
		}
	}
	f.Add(byte(0), []byte(nil))
	f.Add(byte(200), []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, op byte, payload []byte) {
		m := AcquireMessage()
		defer ReleaseMessage(m)
		if err := DecodeBinaryInto(m, op, 7, payload); err != nil {
			return
		}
		frame, ok := AppendEncodeBinary(nil, m)
		if !ok {
			t.Fatalf("decoder accepted a message the encoder cannot represent: %+v", m)
		}
		op2, n, seq, err := ParseBinaryHeader(frame)
		if err != nil || BinaryHeaderSize+n != len(frame) || seq != 7 {
			t.Fatalf("re-encoded frame malformed: %v (% x)", err, frame)
		}
		m2 := AcquireMessage()
		defer ReleaseMessage(m2)
		if err := DecodeBinaryInto(m2, op2, seq, frame[BinaryHeaderSize:]); err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode/encode/decode not stable:\n in %+v\nout %+v", m, m2)
		}
	})
}

// FuzzBinaryJSONParity drives both codecs with the same field values.
// Whenever the binary encoder can represent the message, decoding its
// frame must agree exactly with decoding the JSON line — and a
// single-byte corruption anywhere in the frame must keep the seq-echo
// contract: either the header still yields the true seq (so the
// transport can answer a payload error like a mangled JSON line), or
// the header parse fails and the connection is condemned. Never a
// panic, never a silently mis-framed read.
func FuzzBinaryJSONParity(f *testing.F) {
	f.Add("alloc", uint64(7), int64(41), int64(4<<20), int64(0), uint64(0), "", "cudaMalloc", "", true, "accept", -1)
	f.Add("register", uint64(1), int64(1), int64(0), int64(512<<20), uint64(0), "c1", "", "", false, "", 0)
	f.Add("response", uint64(9), int64(0), int64(0), int64(0), uint64(0), "", "", "a \"quoted\" \\ path\nline", false, "reject", 5)
	f.Add("confirm", uint64(2), int64(1), int64(1), int64(0), uint64(1)<<63, "", "", "", false, "", 14)
	f.Fuzz(func(t *testing.T, typ string, seq uint64, pid, size, limit int64, addr uint64,
		container, api, errText string, ok bool, decision string, corrupt int) {
		in := AcquireMessage()
		defer ReleaseMessage(in)
		in.Type = Type(typ)
		in.Seq = seq
		in.Container = container
		in.PID = int(pid)
		in.Size = size
		in.Limit = limit
		in.Addr = addr
		in.API = api
		in.OK = ok
		in.Error = errText
		in.Decision = Decision(decision)

		frame, repr := AppendEncodeBinary(nil, in)
		if !repr {
			return // JSON-only message: the fallback path carries it
		}
		if in.Validate() != nil {
			// The decoder applies Validate, so an invalid message must be
			// rejected coming back — matching the JSON decoder's contract.
			out := AcquireMessage()
			defer ReleaseMessage(out)
			op, _, s, err := ParseBinaryHeader(frame)
			if err == nil && DecodeBinaryInto(out, op, s, frame[BinaryHeaderSize:]) == nil {
				t.Fatalf("binary decoder accepted a message Validate rejects: %+v", in)
			}
			return
		}

		viaBinary := decodeBinaryFrame(t, frame)
		viaJSON := AcquireMessage()
		defer ReleaseMessage(viaJSON)
		line := AppendEncode(nil, in)
		if err := DecodeInto(viaJSON, line[:len(line)-1]); err != nil {
			t.Fatalf("json decode: %v", err)
		}
		if !reflect.DeepEqual(viaBinary, viaJSON) {
			t.Fatalf("codecs disagree:\nbinary %+v\n  json %+v", viaBinary, viaJSON)
		}

		if corrupt >= 0 && corrupt < len(frame) {
			bad := append([]byte(nil), frame...)
			bad[corrupt] ^= 0x20 // the chaos injector's exact mutation
			op, n, s, err := ParseBinaryHeader(bad)
			if err != nil {
				return // condemned connection: safe
			}
			if corrupt < BinaryHeaderSize {
				t.Fatalf("header corruption at %d went undetected", corrupt)
			}
			if s != in.Seq || n != len(bad)-BinaryHeaderSize {
				t.Fatalf("payload corruption at %d changed the header", corrupt)
			}
			out := AcquireMessage()
			defer ReleaseMessage(out)
			_ = DecodeBinaryInto(out, op, s, bad[BinaryHeaderSize:]) // must not panic
		}
	})
}
