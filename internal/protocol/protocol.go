// Package protocol defines the JSON message format ConVGPU components
// exchange over UNIX domain sockets (paper §III-A): the customized
// nvidia-docker registers containers with the GPU memory scheduler, the
// CUDA wrapper module reports allocation traffic, and nvidia-docker-plugin
// delivers the close signal when a container stops.
//
// Messages are single JSON objects, one per line (newline-delimited).
// Every request carries a sequence number; the matching response echoes
// it, which lets a single connection multiplex concurrent requests — a
// container may have several processes blocked in allocation calls at
// once while the scheduler withholds their replies (suspension).
package protocol

import (
	"errors"
	"fmt"

	"convgpu/internal/bytesize"
	"convgpu/internal/errs"
)

// Type discriminates messages.
type Type string

// Request and response types.
const (
	// TypeRegister is sent by the customized nvidia-docker before the
	// container is created: it declares the container's GPU memory limit
	// and asks for the per-container socket directory.
	TypeRegister Type = "register"
	// TypeAlloc is sent by the wrapper module when the user program calls
	// an allocation API. The response carries the scheduler's decision;
	// for a suspended request the response is simply withheld until the
	// scheduler grants the memory.
	TypeAlloc Type = "alloc"
	// TypeConfirm is sent by the wrapper after the real allocation
	// succeeded, reporting the device address actually returned.
	TypeConfirm Type = "confirm"
	// TypeAbort is sent by the wrapper when an allocation the scheduler
	// accepted subsequently failed in the real CUDA call (e.g. device
	// fragmentation): the charged memory must be returned.
	TypeAbort Type = "abort"
	// TypeFree is sent by the wrapper when the user program deallocates.
	TypeFree Type = "free"
	// TypeProcExit is sent by the wrapper when __cudaUnregisterFatBinary
	// fires: the process is gone and all its allocations must be released
	// even if the program leaked them.
	TypeProcExit Type = "procexit"
	// TypeClose is sent by nvidia-docker-plugin when the dummy volume is
	// unmounted, i.e. the container exited for any reason.
	TypeClose Type = "close"
	// TypeMemInfo asks the scheduler for the container's virtualized view
	// of GPU memory (free within limit, total = limit).
	TypeMemInfo Type = "meminfo"
	// TypeAttach is sent by the wrapper module after (re)connecting to
	// its container socket: it announces the process and renews the
	// container's session lease. After a reconnect it is followed by one
	// TypeRestore per live allocation.
	TypeAttach Type = "attach"
	// TypeRestore re-reports one live allocation when a wrapper
	// re-attaches: a restarted scheduler rebuilds its accounting from
	// these instead of losing track of device memory, and a scheduler
	// that never lost the session treats them as idempotent no-ops.
	TypeRestore Type = "restore"
	// TypeHeartbeat renews the container's session lease. A container
	// whose lease expires (no traffic within the daemon's grace window
	// and no close signal) is presumed dead and reaped.
	TypeHeartbeat Type = "heartbeat"
	// TypeStats asks the daemon for its metric snapshot (introspection,
	// control socket only). The response's Data field carries the JSON
	// payload (obs.StatsPayload).
	TypeStats Type = "stats"
	// TypeTrace asks the daemon for its retained event trace, optionally
	// filtered to one container (Container field). The response's Data
	// field carries the JSON payload (obs.TraceDump).
	TypeTrace Type = "trace"
	// TypeDump asks the daemon for a full state dump: scheduler
	// snapshot, metrics and trace in one JSON document (Data field).
	TypeDump Type = "dump"
	// TypeCodec negotiates the wire codec for the rest of the
	// connection. The probe is always sent JSON-encoded with the offered
	// codec token in Data; a server that supports it echoes the token
	// back (OK + Data), after which the client may switch to binary
	// frames. Servers answer it at the transport layer — handlers never
	// see it — and any other reply (error, old server, lost response)
	// leaves the connection on JSON, so the handshake can only ever
	// downgrade to the universally understood codec.
	TypeCodec Type = "codec"
	// TypeNodes asks the daemon for its cluster membership view
	// (control socket only; single-node daemons answer an error). The
	// response's Data field carries the JSON payload (a list of node
	// statuses).
	TypeNodes Type = "nodes"
	// TypeDrain marks one node (Device field) as draining: it refuses
	// new registrations but lets existing grants complete.
	TypeDrain Type = "drain"
	// TypeRevive manually returns one node (Device field) to service,
	// clearing a draining or down state.
	TypeRevive Type = "revive"
	// TypeSessions asks the daemon for a page of its live sessions
	// (control socket only). Container carries the page cursor (the last
	// container ID of the previous page, empty for the first page) and
	// Size the page limit. The response's Data field carries the JSON
	// payload (a session page).
	TypeSessions Type = "sessions"
	// TypeOps asks the daemon for its async admin operations (control
	// socket only): all retained operations, or one when Container
	// carries an operation ID. The response's Data field carries the
	// JSON payload.
	TypeOps Type = "ops"
	// TypeTenants asks the daemon for its per-tenant usage rollup
	// (control socket only). The response's Data field carries the JSON
	// payload (a list of tenant usage summaries).
	TypeTenants Type = "tenants"
	// TypeResponse is the reply to any request.
	TypeResponse Type = "response"
)

// Decision is the scheduler's verdict on an allocation request.
type Decision string

// Possible decisions. A "suspend" never appears on the wire as a decision:
// suspension is expressed by delaying the response, exactly as in the
// paper ("the response from the scheduler will be suspended until the
// required size of memory is available"). It is still defined because the
// in-process core reports it to the daemon and the simulator.
const (
	DecisionAccept  Decision = "accept"
	DecisionReject  Decision = "reject"
	DecisionSuspend Decision = "suspend"
)

// Message is the single on-wire envelope. Fields are populated according
// to Type; unused fields are omitted from the encoding.
type Message struct {
	Type Type   `json:"type"`
	Seq  uint64 `json:"seq"`

	// Request fields.
	Container string `json:"container,omitempty"`
	PID       int    `json:"pid,omitempty"`
	Size      int64  `json:"size,omitempty"`  // bytes
	Limit     int64  `json:"limit,omitempty"` // bytes, register only
	Addr      uint64 `json:"addr,omitempty"`
	API       string `json:"api,omitempty"`   // originating CUDA API name
	After     uint64 `json:"after,omitempty"` // trace page cursor: return events with Seq > After

	// Tenant identity fields (register/attach only; absent = default
	// tenant, which keeps single-tenant wire bytes identical to older
	// peers).
	Tenant          string `json:"tenant,omitempty"`           // tenant name
	TenantWeight    int    `json:"tenant_weight,omitempty"`    // fair-share weight
	TenantPriority  int    `json:"tenant_priority,omitempty"`  // preemption priority
	TenantQuota     int64  `json:"tenant_quota,omitempty"`     // bytes, hard cap on the tenant's grants
	TenantGuarantee int64  `json:"tenant_guarantee,omitempty"` // bytes, soft reservation floor

	// Response fields.
	OK        bool     `json:"ok,omitempty"`
	Error     string   `json:"error,omitempty"`
	Code      string   `json:"code,omitempty"` // machine-readable error code (see Code*)
	Decision  Decision `json:"decision,omitempty"`
	Granted   int64    `json:"granted,omitempty"` // bytes assigned at register
	SocketDir string   `json:"socket_dir,omitempty"`
	Device    int      `json:"device,omitempty"` // assigned device (register/attach responses)
	Free      int64    `json:"free,omitempty"`   // meminfo: free within limit
	Total     int64    `json:"total,omitempty"`  // meminfo: the limit
	Data      string   `json:"data,omitempty"`   // introspection payload (JSON document)
}

// Encode renders the message as a single JSON line (with trailing
// newline). It is the allocating convenience form of AppendEncode; hot
// paths encode into a pooled buffer instead (package ipc does).
func Encode(m *Message) ([]byte, error) {
	return AppendEncode(make([]byte, 0, 96), m), nil
}

// Decode parses one JSON line into a pooled message and validates it.
// The returned message comes from the package's pool, so a caller that
// pairs it with ReleaseMessage decodes allocation-free in the steady
// state; a caller that never releases merely leaves the message to the
// garbage collector, exactly as before.
func Decode(line []byte) (*Message, error) {
	m := AcquireMessage()
	if err := DecodeInto(m, line); err != nil {
		ReleaseMessage(m)
		return nil, err
	}
	return m, nil
}

// Validate checks type-specific required fields.
func (m *Message) Validate() error {
	switch m.Type {
	case TypeRegister:
		if m.Container == "" {
			return fmt.Errorf("protocol: register without container id")
		}
		if m.Limit <= 0 {
			return fmt.Errorf("protocol: register %q with non-positive limit %d", m.Container, m.Limit)
		}
	case TypeAlloc:
		if m.Size <= 0 {
			return fmt.Errorf("protocol: alloc with non-positive size %d", m.Size)
		}
		if m.PID <= 0 {
			return fmt.Errorf("protocol: alloc without pid")
		}
	case TypeConfirm:
		if m.Size <= 0 || m.PID <= 0 {
			return fmt.Errorf("protocol: confirm missing pid/size")
		}
	case TypeAbort:
		if m.Size <= 0 || m.PID <= 0 {
			return fmt.Errorf("protocol: abort missing pid/size")
		}
	case TypeFree:
		if m.PID <= 0 {
			return fmt.Errorf("protocol: free without pid")
		}
	case TypeProcExit:
		if m.PID <= 0 {
			return fmt.Errorf("protocol: procexit without pid")
		}
	case TypeClose:
		if m.Container == "" {
			return fmt.Errorf("protocol: close without container id")
		}
	case TypeAttach:
		if m.PID <= 0 {
			return fmt.Errorf("protocol: attach without pid")
		}
	case TypeRestore:
		if m.PID <= 0 {
			return fmt.Errorf("protocol: restore without pid")
		}
		if m.Size <= 0 {
			return fmt.Errorf("protocol: restore with non-positive size %d", m.Size)
		}
	case TypeMemInfo, TypeResponse, TypeHeartbeat, TypeStats, TypeTrace, TypeDump, TypeCodec, TypeNodes, TypeDrain, TypeRevive, TypeSessions, TypeOps, TypeTenants:
		// No required request fields beyond the type itself (trace may
		// carry an optional Container filter and an After cursor; codec
		// carries the offered token in Data; drain/revive carry the node
		// index in Device, where zero is a valid node; sessions carries
		// its cursor in Container and page limit in Size; ops carries an
		// optional operation ID in Container).
	case "":
		return fmt.Errorf("protocol: message without type")
	default:
		return fmt.Errorf("protocol: unknown message type %q", m.Type)
	}
	return nil
}

// Machine-readable error codes carried in a failure response's Code
// field. The human-readable Error string stays free-form; the code is
// what clients match on to reconstruct an errors.Is-able sentinel on
// their side of the socket (ErrFromCode).
const (
	// CodeOverCapacity: the requested memory limit exceeds the GPU's
	// schedulable capacity (registration can never succeed).
	CodeOverCapacity = "over_capacity"
	// CodeUnknownContainer: the container is not (or no longer)
	// registered with the scheduler.
	CodeUnknownContainer = "unknown_container"
	// CodeRejected: the scheduler denied the allocation (over limit).
	CodeRejected = "rejected"
	// CodeUnavailable: the daemon is shutting down or cannot serve.
	CodeUnavailable = "unavailable"
	// CodeNodeDown: the node serving the container died and the request
	// could not be migrated; the daemon is alive, so the caller may
	// retry with a fresh registration (which can land elsewhere).
	CodeNodeDown = "node_down"
)

// CodeFor maps a shared sentinel to its wire code — the inverse of
// ErrFromCode, used by the daemon and the HTTP admin plane to stamp
// machine-readable codes onto failure envelopes. Unknown errors map to
// the empty string (callers pick their own fallback).
func CodeFor(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, errs.ErrOverCapacity):
		return CodeOverCapacity
	case errors.Is(err, errs.ErrRejected):
		return CodeRejected
	case errors.Is(err, errs.ErrDaemonUnavailable):
		return CodeUnavailable
	case errors.Is(err, errs.ErrNodeDown):
		return CodeNodeDown
	default:
		return ""
	}
}

// ErrFromCode maps a response's error code to the shared sentinel it
// stands for, so client-side wrappers can offer errors.Is matching for
// failures that crossed the socket. Unknown or empty codes map to nil
// (callers fall back to the free-form Error string).
func ErrFromCode(code string) error {
	switch code {
	case CodeOverCapacity:
		return errs.ErrOverCapacity
	case CodeRejected:
		return errs.ErrRejected
	case CodeUnavailable:
		return errs.ErrDaemonUnavailable
	case CodeNodeDown:
		return errs.ErrNodeDown
	default:
		return nil
	}
}

// Response constructs a success response to req, carrying no payload.
// Payload fields are set by the caller on the returned message.
func Response(req *Message) *Message {
	return &Message{Type: TypeResponse, Seq: req.Seq, OK: true}
}

// ErrorResponse constructs a failure response to req.
func ErrorResponse(req *Message, format string, args ...interface{}) *Message {
	return &Message{Type: TypeResponse, Seq: req.Seq, OK: false, Error: fmt.Sprintf(format, args...)}
}

// CodedErrorResponse is ErrorResponse with a machine-readable code.
func CodedErrorResponse(req *Message, code string, format string, args ...interface{}) *Message {
	m := ErrorResponse(req, format, args...)
	m.Code = code
	return m
}

// SizeBytes returns the Size field as a bytesize.Size.
func (m *Message) SizeBytes() bytesize.Size { return bytesize.Size(m.Size) }

// LimitBytes returns the Limit field as a bytesize.Size.
func (m *Message) LimitBytes() bytesize.Size { return bytesize.Size(m.Limit) }
