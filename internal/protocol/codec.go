// Hand-rolled wire codec for the fixed Message shape.
//
// The hot path of the system is one intercepted CUDA call = one request
// line + one response line, so the per-line cost of encoding/json (its
// reflection walk on encode, its generic state machine and field lookup
// on decode) is paid twice per call on each side of the socket. The
// codec below exploits what the generic library cannot: the message is a
// flat object with a known, closed set of keys whose values are scalars.
//
// Encoding appends directly into a caller-supplied buffer
// (AppendEncode), so a pooled buffer makes a steady-state encode
// allocation-free. Decoding scans the line in place (DecodeInto) and
// maps the type/decision tokens onto the package's canonical constants,
// so a pooled Message makes a steady-state decode allocation-free as
// well: the only remaining allocations are for string fields actually
// present on the wire (container IDs, API names, error texts — all off
// the per-allocation hot path).
//
// Inputs the scanner does not recognize — exotic number forms, nested
// values under unknown keys — fall back to encoding/json, keeping wire
// compatibility bit-for-bit.
package protocol

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"unicode/utf16"
)

// msgPool recycles Messages across the transport read/write loops. The
// ownership rules are documented on AcquireMessage/ReleaseMessage and in
// DESIGN.md §"Hot path".
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// AcquireMessage returns a zeroed Message from the pool. Pair it with
// ReleaseMessage when the message provably has no remaining readers.
func AcquireMessage() *Message { return msgPool.Get().(*Message) }

// ReleaseMessage zeroes m and returns it to the pool. The caller must be
// the last holder: releasing a message that another goroutine still
// reads, or releasing twice, corrupts unrelated traffic. When in doubt,
// don't release — an un-released message is merely garbage-collected.
func ReleaseMessage(m *Message) {
	if m == nil {
		return
	}
	*m = Message{}
	msgPool.Put(m)
}

// Reset zeroes the message in place for reuse.
func (m *Message) Reset() { *m = Message{} }

// Clone returns an independent copy. Handlers that need a message beyond
// the transport's ownership window (see ipc.Handler) clone it first.
func (m *Message) Clone() *Message {
	c := *m
	return &c
}

// bufPool recycles encode line buffers. Stored as *[]byte so Put does
// not allocate a slice header box.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

// AcquireBuffer returns a pooled byte buffer for AppendEncode.
func AcquireBuffer() *[]byte { return bufPool.Get().(*[]byte) }

// ReleaseBuffer returns a buffer to the pool. Oversized buffers (beyond
// a line that could plausibly recur) are dropped to bound pool memory.
func ReleaseBuffer(b *[]byte) {
	if b == nil || cap(*b) > MaxEncodedLine {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// MaxEncodedLine bounds buffers the encode pool retains. Messages are
// small; an error text would have to be pathological to exceed this.
const MaxEncodedLine = 4096

// AppendEncode appends m's wire form — one JSON line including the
// trailing newline — to dst and returns the extended slice. It never
// fails: every Message field has a total JSON rendering.
func AppendEncode(dst []byte, m *Message) []byte {
	dst = append(dst, `{"type":`...)
	dst = appendJSONString(dst, string(m.Type))
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendUint(dst, m.Seq, 10)
	if m.Container != "" {
		dst = append(dst, `,"container":`...)
		dst = appendJSONString(dst, m.Container)
	}
	if m.PID != 0 {
		dst = append(dst, `,"pid":`...)
		dst = strconv.AppendInt(dst, int64(m.PID), 10)
	}
	if m.Size != 0 {
		dst = append(dst, `,"size":`...)
		dst = strconv.AppendInt(dst, m.Size, 10)
	}
	if m.Limit != 0 {
		dst = append(dst, `,"limit":`...)
		dst = strconv.AppendInt(dst, m.Limit, 10)
	}
	if m.Addr != 0 {
		dst = append(dst, `,"addr":`...)
		dst = strconv.AppendUint(dst, m.Addr, 10)
	}
	if m.API != "" {
		dst = append(dst, `,"api":`...)
		dst = appendJSONString(dst, m.API)
	}
	if m.After != 0 {
		dst = append(dst, `,"after":`...)
		dst = strconv.AppendUint(dst, m.After, 10)
	}
	if m.Tenant != "" {
		dst = append(dst, `,"tenant":`...)
		dst = appendJSONString(dst, m.Tenant)
	}
	if m.TenantWeight != 0 {
		dst = append(dst, `,"tenant_weight":`...)
		dst = strconv.AppendInt(dst, int64(m.TenantWeight), 10)
	}
	if m.TenantPriority != 0 {
		dst = append(dst, `,"tenant_priority":`...)
		dst = strconv.AppendInt(dst, int64(m.TenantPriority), 10)
	}
	if m.TenantQuota != 0 {
		dst = append(dst, `,"tenant_quota":`...)
		dst = strconv.AppendInt(dst, m.TenantQuota, 10)
	}
	if m.TenantGuarantee != 0 {
		dst = append(dst, `,"tenant_guarantee":`...)
		dst = strconv.AppendInt(dst, m.TenantGuarantee, 10)
	}
	if m.OK {
		dst = append(dst, `,"ok":true`...)
	}
	if m.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, m.Error)
	}
	if m.Code != "" {
		dst = append(dst, `,"code":`...)
		dst = appendJSONString(dst, m.Code)
	}
	if m.Decision != "" {
		dst = append(dst, `,"decision":`...)
		dst = appendJSONString(dst, string(m.Decision))
	}
	if m.Granted != 0 {
		dst = append(dst, `,"granted":`...)
		dst = strconv.AppendInt(dst, m.Granted, 10)
	}
	if m.SocketDir != "" {
		dst = append(dst, `,"socket_dir":`...)
		dst = appendJSONString(dst, m.SocketDir)
	}
	if m.Device != 0 {
		dst = append(dst, `,"device":`...)
		dst = strconv.AppendInt(dst, int64(m.Device), 10)
	}
	if m.Free != 0 {
		dst = append(dst, `,"free":`...)
		dst = strconv.AppendInt(dst, m.Free, 10)
	}
	if m.Total != 0 {
		dst = append(dst, `,"total":`...)
		dst = strconv.AppendInt(dst, m.Total, 10)
	}
	if m.Data != "" {
		dst = append(dst, `,"data":`...)
		dst = appendJSONString(dst, m.Data)
	}
	dst = append(dst, '}', '\n')
	return dst
}

// appendJSONString appends s as a quoted JSON string, escaping only what
// the grammar requires (quote, backslash, control characters). Invalid
// UTF-8 passes through byte-for-byte, which round-trips more faithfully
// than encoding/json's replacement-rune policy.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		dst = append(dst, s[start:i]...)
		switch c {
		case '"':
			dst = append(dst, '\\', '"')
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			dst = append(dst, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
		start = i + 1
	}
	dst = append(dst, s[start:]...)
	dst = append(dst, '"')
	return dst
}

// DecodeInto parses one JSON line into m (resetting it first) and
// validates it. The fast scanner handles everything this protocol ever
// puts on the wire; constructs outside that shape defer to
// encoding/json so any line the old codec accepted is still accepted.
func DecodeInto(m *Message, line []byte) error {
	m.Reset()
	if !scanMessage(m, line) {
		m.Reset()
		if err := json.Unmarshal(line, m); err != nil {
			return fmt.Errorf("protocol: decode: %v", err)
		}
	}
	return m.Validate()
}

// scanMessage is the fast path: a single in-place pass over the fixed
// message shape. It reports false — leaving m in an undefined state —
// whenever the input strays from that shape.
func scanMessage(m *Message, line []byte) bool {
	i := skipSpace(line, 0)
	if i >= len(line) || line[i] != '{' {
		return false
	}
	i = skipSpace(line, i+1)
	if i < len(line) && line[i] == '}' {
		return trailingOK(line, i+1)
	}
	for {
		key, next, ok := scanString(line, i)
		if !ok {
			return false
		}
		i = skipSpace(line, next)
		if i >= len(line) || line[i] != ':' {
			return false
		}
		i = skipSpace(line, i+1)
		i, ok = scanField(m, line, i, key)
		if !ok {
			return false
		}
		i = skipSpace(line, i)
		if i >= len(line) {
			return false
		}
		switch line[i] {
		case ',':
			i = skipSpace(line, i+1)
		case '}':
			return trailingOK(line, i+1)
		default:
			return false
		}
	}
}

// trailingOK verifies only whitespace follows the closing brace, the
// same top-level strictness json.Unmarshal applies.
func trailingOK(line []byte, i int) bool {
	return skipSpace(line, i) == len(line)
}

func skipSpace(b []byte, i int) int {
	for i < len(b) {
		switch b[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}

// scanField parses the value at b[i:] into the message field named by
// key. Unknown keys get their scalar values skipped for forward
// compatibility; non-scalar values force the encoding/json fallback.
func scanField(m *Message, b []byte, i int, key []byte) (int, bool) {
	switch string(key) { // compiled to a jump on the key bytes, no alloc
	case "type":
		s, next, ok := scanString(b, i)
		if !ok {
			return 0, false
		}
		m.Type = typeToken(s)
		return next, true
	case "seq":
		u, next, ok := scanUint(b, i)
		if !ok {
			return 0, false
		}
		m.Seq = u
		return next, true
	case "container":
		s, next, ok := scanString(b, i)
		if !ok {
			return 0, false
		}
		m.Container = string(s)
		return next, true
	case "pid":
		n, next, ok := scanInt(b, i)
		if !ok {
			return 0, false
		}
		m.PID = int(n)
		return next, true
	case "size":
		n, next, ok := scanInt(b, i)
		if !ok {
			return 0, false
		}
		m.Size = n
		return next, true
	case "limit":
		n, next, ok := scanInt(b, i)
		if !ok {
			return 0, false
		}
		m.Limit = n
		return next, true
	case "addr":
		u, next, ok := scanUint(b, i)
		if !ok {
			return 0, false
		}
		m.Addr = u
		return next, true
	case "after":
		u, next, ok := scanUint(b, i)
		if !ok {
			return 0, false
		}
		m.After = u
		return next, true
	case "api":
		s, next, ok := scanString(b, i)
		if !ok {
			return 0, false
		}
		m.API = apiToken(s)
		return next, true
	case "ok":
		v, next, ok := scanBool(b, i)
		if !ok {
			return 0, false
		}
		m.OK = v
		return next, true
	case "error":
		s, next, ok := scanString(b, i)
		if !ok {
			return 0, false
		}
		m.Error = string(s)
		return next, true
	case "code":
		s, next, ok := scanString(b, i)
		if !ok {
			return 0, false
		}
		m.Code = string(s)
		return next, true
	case "data":
		s, next, ok := scanString(b, i)
		if !ok {
			return 0, false
		}
		m.Data = string(s)
		return next, true
	case "decision":
		s, next, ok := scanString(b, i)
		if !ok {
			return 0, false
		}
		m.Decision = decisionToken(s)
		return next, true
	case "granted":
		n, next, ok := scanInt(b, i)
		if !ok {
			return 0, false
		}
		m.Granted = n
		return next, true
	case "socket_dir":
		s, next, ok := scanString(b, i)
		if !ok {
			return 0, false
		}
		m.SocketDir = string(s)
		return next, true
	case "device":
		n, next, ok := scanInt(b, i)
		if !ok {
			return 0, false
		}
		m.Device = int(n)
		return next, true
	case "free":
		n, next, ok := scanInt(b, i)
		if !ok {
			return 0, false
		}
		m.Free = n
		return next, true
	case "total":
		n, next, ok := scanInt(b, i)
		if !ok {
			return 0, false
		}
		m.Total = n
		return next, true
	case "tenant":
		s, next, ok := scanString(b, i)
		if !ok {
			return 0, false
		}
		m.Tenant = string(s)
		return next, true
	case "tenant_weight":
		n, next, ok := scanInt(b, i)
		if !ok {
			return 0, false
		}
		m.TenantWeight = int(n)
		return next, true
	case "tenant_priority":
		n, next, ok := scanInt(b, i)
		if !ok {
			return 0, false
		}
		m.TenantPriority = int(n)
		return next, true
	case "tenant_quota":
		n, next, ok := scanInt(b, i)
		if !ok {
			return 0, false
		}
		m.TenantQuota = n
		return next, true
	case "tenant_guarantee":
		n, next, ok := scanInt(b, i)
		if !ok {
			return 0, false
		}
		m.TenantGuarantee = n
		return next, true
	default:
		return skipScalar(b, i)
	}
}

// typeToken maps a wire token onto the canonical Type constant so the
// decoded message aliases no input bytes and allocates nothing for any
// known type.
func typeToken(s []byte) Type {
	switch string(s) {
	case string(TypeRegister):
		return TypeRegister
	case string(TypeAlloc):
		return TypeAlloc
	case string(TypeConfirm):
		return TypeConfirm
	case string(TypeAbort):
		return TypeAbort
	case string(TypeFree):
		return TypeFree
	case string(TypeProcExit):
		return TypeProcExit
	case string(TypeClose):
		return TypeClose
	case string(TypeMemInfo):
		return TypeMemInfo
	case string(TypeAttach):
		return TypeAttach
	case string(TypeRestore):
		return TypeRestore
	case string(TypeHeartbeat):
		return TypeHeartbeat
	case string(TypeStats):
		return TypeStats
	case string(TypeTrace):
		return TypeTrace
	case string(TypeDump):
		return TypeDump
	case string(TypeSessions):
		return TypeSessions
	case string(TypeOps):
		return TypeOps
	case string(TypeTenants):
		return TypeTenants
	case string(TypeResponse):
		return TypeResponse
	default:
		return Type(s) // unknown: allocates, Validate rejects it anyway
	}
}

// apiToken is typeToken for the API field: the wrapper only ever sends
// the intercepted CUDA API names, so matching the wire bytes onto these
// canonical strings makes decoding any real request allocation-free. A
// test cross-checks the set against wrapper.InterceptedAPIs.
func apiToken(s []byte) string {
	switch string(s) {
	case "cudaMalloc":
		return "cudaMalloc"
	case "cudaMallocManaged":
		return "cudaMallocManaged"
	case "cudaMallocPitch":
		return "cudaMallocPitch"
	case "cudaMalloc3D":
		return "cudaMalloc3D"
	case "cudaFree":
		return "cudaFree"
	case "cudaMemGetInfo":
		return "cudaMemGetInfo"
	case "cudaGetDeviceProperties":
		return "cudaGetDeviceProperties"
	case "__cudaUnregisterFatBinary":
		return "__cudaUnregisterFatBinary"
	default:
		return string(s) // unknown API: allocates, off every hot path
	}
}

// decisionToken is typeToken for the Decision field.
func decisionToken(s []byte) Decision {
	switch string(s) {
	case string(DecisionAccept):
		return DecisionAccept
	case string(DecisionReject):
		return DecisionReject
	case string(DecisionSuspend):
		return DecisionSuspend
	default:
		return Decision(s)
	}
}

// scanString parses a JSON string starting at b[i] and returns its
// decoded bytes. Strings without escapes — every string this protocol
// emits for its hot-path messages — are returned as a sub-slice of b
// (zero-copy); escaped strings are decoded into a fresh buffer.
func scanString(b []byte, i int) ([]byte, int, bool) {
	if i >= len(b) || b[i] != '"' {
		return nil, 0, false
	}
	i++
	start := i
	for i < len(b) {
		switch b[i] {
		case '"':
			return b[start:i], i + 1, true
		case '\\':
			return unescapeString(b, start, i)
		default:
			if b[i] < 0x20 {
				return nil, 0, false // raw control char: invalid JSON
			}
			i++
		}
	}
	return nil, 0, false
}

// unescapeString finishes scanning a string that contains escapes; b[esc]
// is the first backslash, b[start:esc] the clean prefix.
func unescapeString(b []byte, start, esc int) ([]byte, int, bool) {
	out := make([]byte, 0, len(b)-start)
	out = append(out, b[start:esc]...)
	i := esc
	for i < len(b) {
		c := b[i]
		switch {
		case c == '"':
			return out, i + 1, true
		case c == '\\':
			if i+1 >= len(b) {
				return nil, 0, false
			}
			i++
			switch b[i] {
			case '"', '\\', '/':
				out = append(out, b[i])
				i++
			case 'b':
				out = append(out, '\b')
				i++
			case 'f':
				out = append(out, '\f')
				i++
			case 'n':
				out = append(out, '\n')
				i++
			case 'r':
				out = append(out, '\r')
				i++
			case 't':
				out = append(out, '\t')
				i++
			case 'u':
				r, next, ok := scanUnicodeEscape(b, i+1)
				if !ok {
					return nil, 0, false
				}
				out = utf8AppendRune(out, r)
				i = next
			default:
				return nil, 0, false
			}
		case c < 0x20:
			return nil, 0, false
		default:
			out = append(out, c)
			i++
		}
	}
	return nil, 0, false
}

// scanUnicodeEscape parses the 4 hex digits after \u (plus a low
// surrogate pair when present) and returns the rune.
func scanUnicodeEscape(b []byte, i int) (rune, int, bool) {
	r1, ok := hex4(b, i)
	if !ok {
		return 0, 0, false
	}
	i += 4
	if utf16.IsSurrogate(r1) {
		if i+6 <= len(b) && b[i] == '\\' && b[i+1] == 'u' {
			if r2, ok := hex4(b, i+2); ok {
				if dec := utf16.DecodeRune(r1, r2); dec != 0xFFFD {
					return dec, i + 6, true
				}
			}
		}
		return 0xFFFD, i, true // lone surrogate, like encoding/json
	}
	return r1, i, true
}

func hex4(b []byte, i int) (rune, bool) {
	if i+4 > len(b) {
		return 0, false
	}
	var r rune
	for _, c := range b[i : i+4] {
		r <<= 4
		switch {
		case c >= '0' && c <= '9':
			r |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			r |= rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			r |= rune(c-'A') + 10
		default:
			return 0, false
		}
	}
	return r, true
}

// utf8AppendRune is utf8.AppendRune (spelled out to keep the import set
// minimal on go1.22's linter settings).
func utf8AppendRune(dst []byte, r rune) []byte {
	return append(dst, string(r)...)
}

// scanInt parses an integer literal. Floats and exponent forms bail to
// the encoding/json fallback, which reports the same overflow/shape
// errors the old decoder did.
func scanInt(b []byte, i int) (int64, int, bool) {
	neg := false
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}
	start := i
	var n uint64
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		d := uint64(b[i] - '0')
		if n > (1<<63-1)/10 {
			return 0, 0, false // would overflow: let encoding/json decide
		}
		n = n*10 + d
		i++
	}
	if i == start {
		return 0, 0, false
	}
	if i < len(b) && (b[i] == '.' || b[i] == 'e' || b[i] == 'E') {
		return 0, 0, false
	}
	if neg {
		if n > 1<<63 {
			return 0, 0, false
		}
		return -int64(n), i, true
	}
	if n > 1<<63-1 {
		return 0, 0, false
	}
	return int64(n), i, true
}

// scanUint parses a non-negative integer literal (seq, addr).
func scanUint(b []byte, i int) (uint64, int, bool) {
	start := i
	var n uint64
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		d := uint64(b[i] - '0')
		if n > (1<<64-1)/10 || n*10 > (1<<64-1)-d {
			return 0, 0, false
		}
		n = n*10 + d
		i++
	}
	if i == start {
		return 0, 0, false
	}
	if i < len(b) && (b[i] == '.' || b[i] == 'e' || b[i] == 'E') {
		return 0, 0, false
	}
	return n, i, true
}

func scanBool(b []byte, i int) (bool, int, bool) {
	if i+4 <= len(b) && string(b[i:i+4]) == "true" {
		return true, i + 4, true
	}
	if i+5 <= len(b) && string(b[i:i+5]) == "false" {
		return false, i + 5, true
	}
	return false, 0, false
}

// skipScalar steps over an unknown key's scalar value. Arrays and
// objects return false, routing the whole line to encoding/json.
func skipScalar(b []byte, i int) (int, bool) {
	if i >= len(b) {
		return 0, false
	}
	switch b[i] {
	case '"':
		_, next, ok := scanString(b, i)
		return next, ok
	case 't':
		if i+4 <= len(b) && string(b[i:i+4]) == "true" {
			return i + 4, true
		}
	case 'f':
		if i+5 <= len(b) && string(b[i:i+5]) == "false" {
			return i + 5, true
		}
	case 'n':
		if i+4 <= len(b) && string(b[i:i+4]) == "null" {
			return i + 4, true
		}
	default:
		// Numbers, including forms our field scanners reject; the value
		// is discarded so shape does not matter beyond delimiting it.
		start := i
		for i < len(b) {
			switch b[i] {
			case ',', '}', ' ', '\t', '\n', '\r':
				if i == start {
					return 0, false
				}
				return i, true
			default:
				i++
			}
		}
	}
	return 0, false
}

// ScanSeq best-effort extracts the "seq" field from a line that failed
// to decode, so the transport can still echo the sequence number on its
// error response and the caller can correlate the failure instead of
// timing out. Returns 0 when no sequence number is recoverable.
func ScanSeq(line []byte) uint64 {
	for i := 0; i+5 <= len(line); i++ {
		if line[i] != '"' || string(line[i:i+5]) != `"seq"` {
			continue
		}
		j := skipSpace(line, i+5)
		if j >= len(line) || line[j] != ':' {
			continue
		}
		j = skipSpace(line, j+1)
		if u, _, ok := scanUint(line, j); ok {
			return u
		}
	}
	return 0
}
