package protocol_test

import (
	"bytes"
	"testing"

	"convgpu/internal/protocol"
	"convgpu/internal/wrapper"
)

// TestAPIInterningCoversInterceptedAPIs proves the codec's API-name
// interning spans exactly the set the wrapper can send: decoding a
// request carrying any intercepted API name must allocate nothing, in
// both codecs. A name added to the wrapper without a matching intern
// case fails here instead of silently costing an allocation per call.
func TestAPIInterningCoversInterceptedAPIs(t *testing.T) {
	for _, api := range wrapper.InterceptedAPIs() {
		m := &protocol.Message{Type: protocol.TypeFree, Seq: 9, PID: 41, Addr: 160, API: api}
		line := bytes.TrimSuffix(protocol.AppendEncode(nil, m), []byte("\n"))
		frame, ok := protocol.AppendEncodeBinary(nil, m)
		if !ok {
			t.Fatalf("%s: no binary form", api)
		}
		op, _, seq, err := protocol.ParseBinaryHeader(frame)
		if err != nil {
			t.Fatal(err)
		}
		out := protocol.AcquireMessage()
		defer protocol.ReleaseMessage(out)
		if n := testing.AllocsPerRun(100, func() {
			if err := protocol.DecodeInto(out, line); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("JSON decode of api %q allocates %.1f/op (missing intern case?)", api, n)
		}
		if n := testing.AllocsPerRun(100, func() {
			if err := protocol.DecodeBinaryInto(out, op, seq, frame[protocol.BinaryHeaderSize:]); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("binary decode of api %q allocates %.1f/op (missing intern case?)", api, n)
		}
		if out.API != api {
			t.Errorf("api %q decoded as %q", api, out.API)
		}
	}
}

// TestPooledDecodeZeroAlloc is the satellite target in miniature: the
// allocating-convenience Decode, paired with ReleaseMessage, runs the
// steady state allocation-free on the JSON fallback path.
func TestPooledDecodeZeroAlloc(t *testing.T) {
	resp := &protocol.Message{Type: protocol.TypeResponse, Seq: 123456, OK: true, Decision: protocol.DecisionAccept}
	line := bytes.TrimSuffix(protocol.AppendEncode(nil, resp), []byte("\n"))
	// Warm the pool so the first Get doesn't count.
	if m, err := protocol.Decode(line); err != nil {
		t.Fatal(err)
	} else {
		protocol.ReleaseMessage(m)
	}
	if n := testing.AllocsPerRun(200, func() {
		m, err := protocol.Decode(line)
		if err != nil {
			t.Fatal(err)
		}
		protocol.ReleaseMessage(m)
	}); n != 0 {
		t.Errorf("pooled Decode allocates %.1f/op, want 0", n)
	}
}
