// Binary fast-path codec.
//
// JSON costs the hot path twice per CUDA call on each side of the
// socket: digits rendered and re-parsed, keys scanned, strings walked
// for escapes. The binary codec removes all of that for the verbs that
// matter — alloc/confirm/free and their responses — by framing the same
// Message struct as a length-prefixed record of tagged fixed-width
// fields. It is negotiated per connection (see TypeCodec); the JSON
// line codec remains the universal fallback and the debug format, and
// its wire bytes are untouched.
//
// Frame layout (little-endian):
//
//	offset 0   magic 0xBF     — cannot begin a JSON line, distinct from '\n'
//	offset 1   opcode         — the message Type as a byte
//	offset 2   u16 payload length
//	offset 4   u64 seq
//	offset 12  checksum       — XOR of bytes 0..11
//	offset 13  payload        — tagged fields, omitted when zero
//
// The header checksum is what keeps a corrupted length byte from ever
// blocking a reader on bytes that will not come: any single-byte flip
// in the header fails the XOR and the connection is torn down instead
// of trusting the length. Payload fields are a tag byte followed by a
// fixed 8-byte integer, a u16-length-prefixed string, or a single enum
// byte; a tag the decoder does not know fails the frame, which the
// transport answers with an error response echoing the header's seq —
// the same contract as a malformed JSON line. There is no in-band
// versioning: peers that differ fall back to JSON at negotiation.
package protocol

import (
	"encoding/binary"
	"fmt"
)

const (
	// BinaryMagic is the first byte of every binary frame. The dispatch
	// rule on a mixed-codec connection is first byte >= 0x80 = binary
	// frame, anything else = JSON line; a JSON line we emit always
	// starts with '{' (0x7B), so the two framings cannot be confused
	// even when a fault flips a bit in the leading byte.
	BinaryMagic = 0xBF
	// BinaryHeaderSize is the fixed frame header length.
	BinaryHeaderSize = 13
	// MaxBinaryPayload bounds the tagged-field payload (u16 length).
	// Larger messages (introspection dumps, pathological error texts)
	// are sent as JSON lines instead — both ends accept either framing
	// per message once binary is negotiated.
	MaxBinaryPayload = 1<<16 - 1
	// BinaryCodecToken is offered in a TypeCodec probe's Data field and
	// echoed by a server that speaks this frame format.
	BinaryCodecToken = "bin1"
)

// Payload field tags. Tag values are stable wire format.
const (
	tagContainer = 1  // string
	tagPID       = 2  // i64
	tagSize      = 3  // i64
	tagLimit     = 4  // i64
	tagAddr      = 5  // u64
	tagAPI       = 6  // string (interned on decode)
	tagOK        = 7  // presence = true
	tagError     = 8  // string
	tagCode      = 9  // string
	tagDecision  = 10 // enum byte
	tagGranted   = 11 // i64
	tagSocketDir = 12 // string
	tagDevice    = 13 // i64
	tagFree      = 14 // i64
	tagTotal     = 15 // i64
	tagData      = 16 // string
	tagAfter     = 17 // u64 (trace page cursor)

	// Tenant identity fields (register/attach). New tags extend the
	// format compatibly: zero values are omitted, so single-tenant
	// traffic emits byte-identical frames, and an old decoder only ever
	// sees these tags from a peer that negotiated with a new server.
	tagTenant          = 18 // string
	tagTenantWeight    = 19 // i64
	tagTenantPriority  = 20 // i64
	tagTenantQuota     = 21 // i64
	tagTenantGuarantee = 22 // i64
)

// typeByOpcode maps opcode bytes back to message types. Opcode values
// are stable wire format; 0 stays invalid so a zeroed header never
// aliases a real verb.
var typeByOpcode = [...]Type{
	1:  TypeRegister,
	2:  TypeAlloc,
	3:  TypeConfirm,
	4:  TypeAbort,
	5:  TypeFree,
	6:  TypeProcExit,
	7:  TypeClose,
	8:  TypeMemInfo,
	9:  TypeAttach,
	10: TypeRestore,
	11: TypeHeartbeat,
	12: TypeStats,
	13: TypeTrace,
	14: TypeDump,
	15: TypeCodec,
	16: TypeResponse,
	17: TypeTenants,
}

// opcodeOf returns the opcode for a type, or false for a type with no
// binary form (unknown/empty types — Validate rejects those anyway).
func opcodeOf(t Type) (byte, bool) {
	for op := 1; op < len(typeByOpcode); op++ {
		if typeByOpcode[op] == t {
			return byte(op), true
		}
	}
	return 0, false
}

// Decision enum bytes (stable wire format).
const (
	decAccept  = 1
	decReject  = 2
	decSuspend = 3
)

func decisionByte(d Decision) (byte, bool) {
	switch d {
	case DecisionAccept:
		return decAccept, true
	case DecisionReject:
		return decReject, true
	case DecisionSuspend:
		return decSuspend, true
	default:
		return 0, false
	}
}

// AppendEncodeBinary appends m's binary frame to dst and reports
// whether the message was representable. ok=false — an unknown type or
// decision token, a string over 64 KiB, or a payload over
// MaxBinaryPayload — leaves dst unchanged and means the caller must
// send the message as a JSON line instead. With a pooled buffer the
// encode is allocation-free.
func AppendEncodeBinary(dst []byte, m *Message) (out []byte, ok bool) {
	op, ok := opcodeOf(m.Type)
	if !ok {
		return dst, false
	}
	base := len(dst)
	dst = append(dst, BinaryMagic, op, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)

	dst, ok = appendBinaryString(dst, tagContainer, m.Container)
	if !ok {
		return dst[:base], false
	}
	dst = appendBinaryInt(dst, tagPID, int64(m.PID))
	dst = appendBinaryInt(dst, tagSize, m.Size)
	dst = appendBinaryInt(dst, tagLimit, m.Limit)
	dst = appendBinaryInt(dst, tagAddr, int64(m.Addr))
	dst = appendBinaryInt(dst, tagAfter, int64(m.After))
	dst, ok = appendBinaryString(dst, tagTenant, m.Tenant)
	if !ok {
		return dst[:base], false
	}
	dst = appendBinaryInt(dst, tagTenantWeight, int64(m.TenantWeight))
	dst = appendBinaryInt(dst, tagTenantPriority, int64(m.TenantPriority))
	dst = appendBinaryInt(dst, tagTenantQuota, m.TenantQuota)
	dst = appendBinaryInt(dst, tagTenantGuarantee, m.TenantGuarantee)
	dst, ok = appendBinaryString(dst, tagAPI, m.API)
	if !ok {
		return dst[:base], false
	}
	if m.OK {
		dst = append(dst, tagOK)
	}
	dst, ok = appendBinaryString(dst, tagError, m.Error)
	if !ok {
		return dst[:base], false
	}
	dst, ok = appendBinaryString(dst, tagCode, m.Code)
	if !ok {
		return dst[:base], false
	}
	if m.Decision != "" {
		d, ok := decisionByte(m.Decision)
		if !ok {
			return dst[:base], false
		}
		dst = append(dst, tagDecision, d)
	}
	dst = appendBinaryInt(dst, tagGranted, m.Granted)
	dst, ok = appendBinaryString(dst, tagSocketDir, m.SocketDir)
	if !ok {
		return dst[:base], false
	}
	dst = appendBinaryInt(dst, tagDevice, int64(m.Device))
	dst = appendBinaryInt(dst, tagFree, m.Free)
	dst = appendBinaryInt(dst, tagTotal, m.Total)
	dst, ok = appendBinaryString(dst, tagData, m.Data)
	if !ok {
		return dst[:base], false
	}

	n := len(dst) - base - BinaryHeaderSize
	if n > MaxBinaryPayload {
		return dst[:base], false
	}
	hdr := dst[base : base+BinaryHeaderSize]
	binary.LittleEndian.PutUint16(hdr[2:4], uint16(n))
	binary.LittleEndian.PutUint64(hdr[4:12], m.Seq)
	hdr[12] = xor12(hdr)
	return dst, true
}

// appendBinaryInt appends tag + 8-byte little-endian value, omitting
// zero values like the JSON encoder omits empty fields.
func appendBinaryInt(dst []byte, tag byte, v int64) []byte {
	if v == 0 {
		return dst
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	dst = append(dst, tag)
	return append(dst, buf[:]...)
}

// appendBinaryString appends tag + u16 length + bytes; empty strings
// are omitted. ok=false when the string exceeds the u16 length.
func appendBinaryString(dst []byte, tag byte, s string) ([]byte, bool) {
	if s == "" {
		return dst, true
	}
	if len(s) > MaxBinaryPayload {
		return dst, false
	}
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
	dst = append(dst, tag, l[0], l[1])
	return append(dst, s...), true
}

// xor12 folds the first 12 header bytes into the checksum byte.
func xor12(hdr []byte) byte {
	var x byte
	for _, b := range hdr[:12] {
		x ^= b
	}
	return x
}

// ParseBinaryHeader validates a frame header and returns its opcode,
// payload length and sequence number. An error here means the header
// bytes cannot be trusted — in particular the length — so the caller
// must drop the connection rather than attempt to resynchronize; a
// fault that flips any single header byte is always caught by the XOR.
func ParseBinaryHeader(hdr []byte) (op byte, payloadLen int, seq uint64, err error) {
	if len(hdr) < BinaryHeaderSize {
		return 0, 0, 0, fmt.Errorf("protocol: binary header truncated (%d bytes)", len(hdr))
	}
	if hdr[0] != BinaryMagic {
		return 0, 0, 0, fmt.Errorf("protocol: bad frame magic %#02x", hdr[0])
	}
	if xor12(hdr) != hdr[12] {
		return 0, 0, 0, fmt.Errorf("protocol: binary header checksum mismatch")
	}
	op = hdr[1]
	if int(op) >= len(typeByOpcode) || typeByOpcode[op] == "" {
		return 0, 0, 0, fmt.Errorf("protocol: unknown opcode %d", op)
	}
	payloadLen = int(binary.LittleEndian.Uint16(hdr[2:4]))
	seq = binary.LittleEndian.Uint64(hdr[4:12])
	return op, payloadLen, seq, nil
}

// DecodeBinaryInto parses a frame's payload into m (resetting it
// first), with type and seq taken from the already-validated header.
// Decoding a hot-path message allocates nothing: integers and enums
// are fixed-width, and the API name is interned like the JSON scanner
// does. An error reports a malformed payload; the transport answers it
// with an error response echoing seq, matching the JSON path's
// malformed-line contract.
func DecodeBinaryInto(m *Message, op byte, seq uint64, payload []byte) error {
	m.Reset()
	if int(op) >= len(typeByOpcode) || typeByOpcode[op] == "" {
		return fmt.Errorf("protocol: unknown opcode %d", op)
	}
	m.Type = typeByOpcode[op]
	m.Seq = seq
	i := 0
	for i < len(payload) {
		tag := payload[i]
		i++
		switch tag {
		case tagOK:
			m.OK = true
		case tagDecision:
			if i >= len(payload) {
				return errTruncatedField(tag)
			}
			switch payload[i] {
			case decAccept:
				m.Decision = DecisionAccept
			case decReject:
				m.Decision = DecisionReject
			case decSuspend:
				m.Decision = DecisionSuspend
			default:
				return fmt.Errorf("protocol: unknown decision byte %d", payload[i])
			}
			i++
		case tagPID, tagSize, tagLimit, tagAddr, tagAfter, tagGranted, tagDevice, tagFree, tagTotal,
			tagTenantWeight, tagTenantPriority, tagTenantQuota, tagTenantGuarantee:
			if i+8 > len(payload) {
				return errTruncatedField(tag)
			}
			v := binary.LittleEndian.Uint64(payload[i : i+8])
			i += 8
			switch tag {
			case tagPID:
				m.PID = int(int64(v))
			case tagSize:
				m.Size = int64(v)
			case tagLimit:
				m.Limit = int64(v)
			case tagAddr:
				m.Addr = v
			case tagAfter:
				m.After = v
			case tagGranted:
				m.Granted = int64(v)
			case tagDevice:
				m.Device = int(int64(v))
			case tagFree:
				m.Free = int64(v)
			case tagTotal:
				m.Total = int64(v)
			case tagTenantWeight:
				m.TenantWeight = int(int64(v))
			case tagTenantPriority:
				m.TenantPriority = int(int64(v))
			case tagTenantQuota:
				m.TenantQuota = int64(v)
			case tagTenantGuarantee:
				m.TenantGuarantee = int64(v)
			}
		case tagContainer, tagAPI, tagError, tagCode, tagSocketDir, tagData, tagTenant:
			if i+2 > len(payload) {
				return errTruncatedField(tag)
			}
			n := int(binary.LittleEndian.Uint16(payload[i : i+2]))
			i += 2
			if i+n > len(payload) {
				return errTruncatedField(tag)
			}
			s := payload[i : i+n]
			i += n
			switch tag {
			case tagContainer:
				m.Container = string(s)
			case tagAPI:
				m.API = apiToken(s)
			case tagError:
				m.Error = string(s)
			case tagCode:
				m.Code = codeToken(s)
			case tagSocketDir:
				m.SocketDir = string(s)
			case tagData:
				m.Data = string(s)
			case tagTenant:
				m.Tenant = string(s)
			}
		default:
			return fmt.Errorf("protocol: unknown payload tag %d", tag)
		}
	}
	return m.Validate()
}

func errTruncatedField(tag byte) error {
	return fmt.Errorf("protocol: payload truncated in field tag %d", tag)
}

// codeToken interns the machine-readable error codes so a binary error
// response decodes allocation-free.
func codeToken(s []byte) string {
	switch string(s) {
	case CodeOverCapacity:
		return CodeOverCapacity
	case CodeUnknownContainer:
		return CodeUnknownContainer
	case CodeRejected:
		return CodeRejected
	case CodeUnavailable:
		return CodeUnavailable
	case CodeNodeDown:
		return CodeNodeDown
	default:
		return string(s)
	}
}
