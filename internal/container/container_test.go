package container

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/daemon"
	"convgpu/internal/gpu"
	"convgpu/internal/ipc"
	"convgpu/internal/protocol"
)

func mib(n int) bytesize.Size { return bytesize.Size(n) * bytesize.MiB }

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(Config{Device: gpu.New(gpu.K20m())})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Fatal("NewEngine without device succeeded")
	}
}

func TestCreateStartWait(t *testing.T) {
	e := newEngine(t)
	var ran int32
	c, err := e.Create(Spec{
		Name: "t1",
		Program: func(p *Proc) error {
			atomic.StoreInt32(&ran, int32(p.PID))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != Created {
		t.Fatalf("state after create = %v", c.State())
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if c.State() != Exited {
		t.Fatalf("state after wait = %v", c.State())
	}
	if atomic.LoadInt32(&ran) == 0 {
		t.Fatal("program did not run / got no pid")
	}
}

func TestCreateValidation(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Create(Spec{Name: "x"}); !errors.Is(err, ErrNoProgram) {
		t.Fatalf("create without program err = %v", err)
	}
	ok := func(p *Proc) error { return nil }
	if _, err := e.Create(Spec{Name: "dup", Program: ok}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Create(Spec{Name: "dup", Program: ok}); !errors.Is(err, ErrNameConflict) {
		t.Fatalf("duplicate name err = %v", err)
	}
}

func TestAutoNameAndListGetRemove(t *testing.T) {
	e := newEngine(t)
	ok := func(p *Proc) error { return nil }
	c1, _ := e.Create(Spec{Program: ok})
	c2, _ := e.Create(Spec{Program: ok})
	if c1.ID() == c2.ID() {
		t.Fatalf("auto names collided: %s", c1.ID())
	}
	if got, err := e.Get(c1.ID()); err != nil || got != c1 {
		t.Fatalf("Get = (%v,%v)", got, err)
	}
	if _, err := e.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get ghost err = %v", err)
	}
	if n := len(e.List()); n != 2 {
		t.Fatalf("List len = %d", n)
	}
	// Cannot remove while running.
	c1.Start()
	c1.Wait()
	if err := e.Remove(c1.ID()); err != nil {
		t.Fatal(err)
	}
	if n := len(e.List()); n != 1 {
		t.Fatalf("List after remove = %d", n)
	}
	if err := e.Remove("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Remove ghost err = %v", err)
	}
}

func TestRemoveRunningFails(t *testing.T) {
	e := newEngine(t)
	block := make(chan struct{})
	c, _ := e.Create(Spec{Name: "r", Program: func(p *Proc) error {
		<-block
		return nil
	}})
	c.Start()
	if err := e.Remove("r"); !errors.Is(err, ErrBadState) {
		t.Fatalf("Remove running err = %v", err)
	}
	close(block)
	c.Wait()
}

func TestProgramErrorPropagates(t *testing.T) {
	e := newEngine(t)
	boom := errors.New("boom")
	c, _ := e.Create(Spec{Name: "e", Program: func(p *Proc) error { return boom }})
	c.Start()
	if err := c.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait err = %v, want boom", err)
	}
}

func TestProgramPanicIsIsolated(t *testing.T) {
	e := newEngine(t)
	c, _ := e.Create(Spec{Name: "p", Program: func(p *Proc) error { panic("kaboom") }})
	c.Start()
	err := c.Wait()
	if err == nil || c.State() != Exited {
		t.Fatalf("panicking container: err=%v state=%v", err, c.State())
	}
}

func TestDoubleStartFails(t *testing.T) {
	e := newEngine(t)
	c, _ := e.Create(Spec{Name: "d", Program: func(p *Proc) error { return nil }})
	c.Start()
	c.Wait()
	if err := c.Start(); !errors.Is(err, ErrBadState) {
		t.Fatalf("second Start err = %v", err)
	}
}

func TestStopCancelsContext(t *testing.T) {
	e := newEngine(t)
	started := make(chan struct{})
	c, _ := e.Create(Spec{Name: "s", Program: func(p *Proc) error {
		close(started)
		<-p.Ctx.Done()
		return p.Ctx.Err()
	}})
	c.Start()
	<-started
	doneStop := make(chan struct{})
	go func() { c.Stop(); close(doneStop) }()
	select {
	case <-doneStop:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not complete")
	}
	if c.State() != Exited {
		t.Fatalf("state after Stop = %v", c.State())
	}
	c.Stop() // idempotent on exited container
}

func TestExitHooksFireOnce(t *testing.T) {
	e := newEngine(t)
	var fired int32
	c, _ := e.Create(Spec{Name: "h", Program: func(p *Proc) error { return nil }})
	c.OnExit(func(c *Container, err error) { atomic.AddInt32(&fired, 1) })
	c.Start()
	c.Wait()
	if n := atomic.LoadInt32(&fired); n != 1 {
		t.Fatalf("hook fired %d times", n)
	}
	// Late registration fires immediately.
	c.OnExit(func(c *Container, err error) { atomic.AddInt32(&fired, 1) })
	if n := atomic.LoadInt32(&fired); n != 2 {
		t.Fatalf("late hook fired %d times total, want 2", n)
	}
}

func TestProcessesGetUniquePIDs(t *testing.T) {
	e := newEngine(t)
	pids := make(chan int, 2)
	prog := func(p *Proc) error { pids <- p.PID; return nil }
	c1, _ := e.Create(Spec{Name: "p1", Program: prog})
	c2, _ := e.Create(Spec{Name: "p2", Program: prog})
	c1.Start()
	c2.Start()
	c1.Wait()
	c2.Wait()
	a, b := <-pids, <-pids
	if a == b {
		t.Fatalf("two containers shared pid %d", a)
	}
}

func TestExecRunsSecondProcess(t *testing.T) {
	e := newEngine(t)
	started := make(chan struct{})
	release := make(chan struct{})
	c, _ := e.Create(Spec{Name: "x", Program: func(p *Proc) error {
		close(started)
		<-release
		return nil
	}})
	c.Start()
	<-started
	var execPID int
	if err := c.Exec(func(p *Proc) error { execPID = p.PID; return nil }); err != nil {
		t.Fatal(err)
	}
	close(release)
	c.Wait()
	if execPID == 0 {
		t.Fatal("exec program did not run")
	}
	if n := len(c.PIDs()); n != 2 {
		t.Fatalf("PIDs = %v, want 2 processes", c.PIDs())
	}
	// Exec on exited container fails.
	if err := c.Exec(func(p *Proc) error { return nil }); !errors.Is(err, ErrBadState) {
		t.Fatalf("exec on exited err = %v", err)
	}
}

func TestPlainContainerUsesRawCUDA(t *testing.T) {
	// Without LD_PRELOAD the process sees the raw device view.
	dev := gpu.New(gpu.K20m())
	e, _ := NewEngine(Config{Device: dev})
	var total bytesize.Size
	c, _ := e.Create(Spec{Name: "raw", Program: func(p *Proc) error {
		_, tot, err := p.CUDA.MemGetInfo()
		total = tot
		return err
	}})
	c.Start()
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if total != 5*bytesize.GiB {
		t.Fatalf("raw container saw total %v, want the device's 5GiB", total)
	}
}

// TestWrapperInjectionEndToEnd exercises the full LD_PRELOAD seam: a
// daemon prepares the container directory, the container mounts it, the
// process's CUDA API is interposed, and the process sees the virtualized
// memory view.
func TestWrapperInjectionEndToEnd(t *testing.T) {
	dev := gpu.New(gpu.K20m())
	st := core.MustNew(core.Config{Capacity: 5 * bytesize.GiB})
	d, err := daemon.Start(daemon.Config{BaseDir: filepath.Join(t.TempDir(), "cv"), Core: st})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Register through the core directly and build the directory via the
	// daemon's control socket path (covered in daemon tests); here we use
	// the daemon's register helper through a control client.
	ctl := dialControl(t, d)
	resp := registerMsg(t, ctl, "wrapped", mib(1024))
	if !resp.OK {
		t.Fatalf("register: %s", resp.Error)
	}

	e, _ := NewEngine(Config{Device: dev})
	var view bytesize.Size
	c, err := e.Create(Spec{
		Name: "wrapped",
		Env: map[string]string{
			"LD_PRELOAD": "/convgpu/libgpushare.so",
		},
		Volumes: map[string]string{"/convgpu": resp.SocketDir},
		Program: func(p *Proc) error {
			ptr, err := p.CUDA.Malloc(mib(100))
			if err != nil {
				return err
			}
			_, total, err := p.CUDA.MemGetInfo()
			if err != nil {
				return err
			}
			view = total
			return p.CUDA.Free(ptr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if view != mib(1024) {
		t.Fatalf("wrapped container saw total %v, want its 1GiB limit", view)
	}
	// The scheduler saw the traffic; after the implicit unregister the
	// container's usage is zero.
	info, err := st.Info("wrapped")
	if err != nil {
		t.Fatal(err)
	}
	if info.Used != 0 {
		t.Fatalf("scheduler usage after exit = %v", info.Used)
	}
}

func TestWrapperInjectionMissingVolumeFails(t *testing.T) {
	e := newEngine(t)
	c, err := e.Create(Spec{
		Name: "broken",
		Env:  map[string]string{"LD_PRELOAD": "/convgpu/libgpushare.so"},
		Program: func(p *Proc) error {
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err == nil {
		t.Fatal("start with dangling LD_PRELOAD succeeded")
	}
	if c.State() != Exited {
		t.Fatalf("state = %v, want exited", c.State())
	}
}

func TestCreateLatency(t *testing.T) {
	dev := gpu.New(gpu.K20m())
	e, _ := NewEngine(Config{Device: dev, CreateLatency: 10 * time.Millisecond})
	start := time.Now()
	if _, err := e.Create(Spec{Name: "slow", Program: func(p *Proc) error { return nil }}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("create took %v, want >= the configured 10ms", d)
	}
}

func TestImageLabels(t *testing.T) {
	im := Image{Name: "cuda:8.0", Labels: map[string]string{"com.nvidia.memory.limit": "512MiB"}}
	if im.Label("com.nvidia.memory.limit") != "512MiB" {
		t.Fatal("label lookup failed")
	}
	if im.Label("absent") != "" {
		t.Fatal("absent label not empty")
	}
}

func TestStateString(t *testing.T) {
	if Created.String() != "created" || Running.String() != "running" || Exited.String() != "exited" {
		t.Fatal("state strings wrong")
	}
	if State(9).String() != "State(9)" {
		t.Fatal("unknown state string wrong")
	}
}

// --- daemon control-socket helpers ---

func dialControl(t *testing.T, d *daemon.Daemon) *ipc.Client {
	t.Helper()
	cli, err := ipc.Dial(d.ControlSocket())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

func registerMsg(t *testing.T, cli *ipc.Client, id string, limit bytesize.Size) *protocol.Message {
	t.Helper()
	resp, err := cli.Call(context.Background(), &protocol.Message{
		Type: protocol.TypeRegister, Container: id, Limit: int64(limit),
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
