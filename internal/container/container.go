// Package container simulates the container runtime ConVGPU sits on —
// the role Docker 1.12 plays in the paper. The middleware interacts with
// Docker through a narrow surface, all of which is reproduced here:
//
//   - create/run with options (labels, environment, volume mounts);
//   - image labels (com.nvidia.memory.limit, com.nvidia.cuda.version);
//   - the LD_PRELOAD injection seam: when a container's environment
//     names the wrapper module and a mounted volume provides it next to
//     the per-container scheduler socket, every process started in the
//     container gets its CUDA API wrapped (package wrapper), exactly as
//     the dynamic linker would interpose libgpushare.so;
//   - exit detection: volume unmount hooks fire when the container
//     stops, which is how nvidia-docker-plugin learns to send the close
//     signal (paper §III-B, the "dummy volume" trick).
//
// Programs are Go functions executed as simulated processes with unique
// host PIDs; they reach the GPU only through the cuda.API handed to
// them, the same way a real containerized binary reaches it only through
// the (possibly interposed) CUDA runtime.
package container

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"convgpu/internal/clock"
	"convgpu/internal/cuda"
	"convgpu/internal/gpu"
	"convgpu/internal/ipc"
	"convgpu/internal/wrapper"
)

// Errors.
var (
	ErrNotFound     = errors.New("container: no such container")
	ErrBadState     = errors.New("container: invalid state for operation")
	ErrNoProgram    = errors.New("container: no program to run")
	ErrNameConflict = errors.New("container: name already in use")
)

// State is a container lifecycle state.
type State int

// Lifecycle states.
const (
	Created State = iota
	Running
	Exited
)

func (s State) String() string {
	switch s {
	case Created:
		return "created"
	case Running:
		return "running"
	case Exited:
		return "exited"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Image is a container image: a name plus labels.
type Image struct {
	Name   string
	Labels map[string]string
}

// Label returns the image label value, or "".
func (im Image) Label(key string) string { return im.Labels[key] }

// Program is code executed inside the container as one process.
type Program func(p *Proc) error

// Proc is the view a containerized process has of its world.
type Proc struct {
	// PID is the host process id (unique engine-wide, like host pids
	// across containers).
	PID int
	// CUDA is the process's CUDA runtime — interposed by the wrapper
	// module when the container was started with the LD_PRELOAD seam.
	CUDA cuda.API
	// Env is the container environment.
	Env map[string]string
	// Ctx is cancelled when the container is stopped.
	Ctx context.Context
	// Clock is the engine clock (virtual in simulations).
	Clock clock.Clock
}

// Getenv returns the environment value, or "".
func (p *Proc) Getenv(key string) string { return p.Env[key] }

// Spec describes a container to create.
type Spec struct {
	// Name is the container name; auto-generated when empty.
	Name string
	// Image supplies default labels.
	Image Image
	// Env is the container environment (e.g. LD_PRELOAD).
	Env map[string]string
	// Volumes maps container mount points to host directories.
	Volumes map[string]string
	// Program is the container's entrypoint process.
	Program Program
}

// ExitHook is invoked (once) when a container exits, with its final
// error. nvidia-docker-plugin uses it as the unmount notification.
type ExitHook func(c *Container, runErr error)

// Config configures an Engine.
type Config struct {
	// Device is the GPU processes reach through their CUDA runtime.
	Device *gpu.Device
	// Clock paces simulated work (default: real time).
	Clock clock.Clock
	// CreateLatency models the container runtime's own creation cost
	// (image setup, namespaces, cgroups). The Figure 5 experiment
	// calibrates it; tests leave it zero.
	CreateLatency time.Duration
}

// Engine is the container runtime.
type Engine struct {
	cfg Config

	mu         sync.Mutex
	nextPID    int
	nextSerial int
	containers map[string]*Container
}

// NewEngine creates a container runtime over a device.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("container: Config.Device is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	return &Engine{cfg: cfg, nextPID: 1000, containers: make(map[string]*Container)}, nil
}

// Container is a created (possibly running or exited) container.
type Container struct {
	engine *Engine
	spec   Spec
	id     string

	mu       sync.Mutex
	state    State
	hooks    []ExitHook
	runErr   error
	done     chan struct{}
	ctx      context.Context
	cancel   context.CancelFunc
	procs    []int
	procWG   sync.WaitGroup
	exitOnce sync.Once
}

// Create builds a container from spec. The wrapper module path, if any,
// is validated at start time, not here — matching Docker, which accepts
// broken mounts at create and fails at exec.
func (e *Engine) Create(spec Spec) (*Container, error) {
	if spec.Program == nil {
		return nil, ErrNoProgram
	}
	if e.cfg.CreateLatency > 0 {
		e.cfg.Clock.Sleep(e.cfg.CreateLatency)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextSerial++
	id := spec.Name
	if id == "" {
		id = fmt.Sprintf("container-%d", e.nextSerial)
	}
	if _, exists := e.containers[id]; exists {
		return nil, fmt.Errorf("%w: %s", ErrNameConflict, id)
	}
	c := &Container{
		engine: e,
		spec:   spec,
		id:     id,
		state:  Created,
		done:   make(chan struct{}),
	}
	e.containers[id] = c
	return c, nil
}

// Get looks a container up by id.
func (e *Engine) Get(id string) (*Container, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.containers[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return c, nil
}

// List returns all container ids, sorted.
func (e *Engine) List() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.containers))
	for id := range e.containers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Remove deletes an exited container.
func (e *Engine) Remove(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.containers[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	c.mu.Lock()
	st := c.state
	c.mu.Unlock()
	if st == Running {
		return fmt.Errorf("%w: %s is running", ErrBadState, id)
	}
	delete(e.containers, id)
	return nil
}

func (e *Engine) allocPID() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextPID++
	return e.nextPID
}

// ID returns the container id.
func (c *Container) ID() string { return c.id }

// State returns the lifecycle state.
func (c *Container) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// OnExit registers a hook fired once when the container exits. Hooks
// registered after exit fire immediately.
func (c *Container) OnExit(h ExitHook) {
	c.mu.Lock()
	if c.state == Exited {
		err := c.runErr
		c.mu.Unlock()
		h(c, err)
		return
	}
	c.hooks = append(c.hooks, h)
	c.mu.Unlock()
}

// resolveWrapperSocket inspects LD_PRELOAD and the volume mounts,
// returning the host path of the scheduler socket sitting next to the
// wrapper module, or "" when the container runs without ConVGPU.
func (c *Container) resolveWrapperSocket() (string, error) {
	preload := c.spec.Env["LD_PRELOAD"]
	if preload == "" || !strings.Contains(preload, wrapper.ModuleFileName) {
		return "", nil
	}
	// Find the volume whose mount point prefixes the preload path.
	for mount, hostDir := range c.spec.Volumes {
		if !strings.HasPrefix(preload, mount+"/") && preload != filepath.Join(mount, wrapper.ModuleFileName) {
			continue
		}
		modPath := filepath.Join(hostDir, wrapper.ModuleFileName)
		if _, err := os.Stat(modPath); err != nil {
			return "", fmt.Errorf("container: LD_PRELOAD names %s but the volume lacks it: %v", wrapper.ModuleFileName, err)
		}
		sock := filepath.Join(hostDir, wrapper.SocketFileName)
		if _, err := os.Stat(sock); err != nil {
			return "", fmt.Errorf("container: wrapper volume lacks the scheduler socket: %v", err)
		}
		return sock, nil
	}
	return "", fmt.Errorf("container: LD_PRELOAD set but no volume provides %s", wrapper.ModuleFileName)
}

// newProc builds the process view, interposing the wrapper module when
// the container was wired for ConVGPU.
func (c *Container) newProc(ctx context.Context) (*Proc, func(), error) {
	pid := c.engine.allocPID()
	var api cuda.API = cuda.NewRuntime(c.engine.cfg.Device, pid)
	cleanup := func() {}
	sock, err := c.resolveWrapperSocket()
	if err != nil {
		return nil, nil, err
	}
	if sock != "" {
		cli, err := ipc.Dial(sock)
		if err != nil {
			return nil, nil, fmt.Errorf("container: wrapper cannot reach scheduler: %w", err)
		}
		// The process context bounds suspension: stopping the container
		// kills processes even while they are blocked in cudaMalloc,
		// the way Docker's SIGKILL would.
		api = wrapper.New(api, cli, pid, wrapper.WithContext(ctx))
		cleanup = func() { cli.Close() }
	}
	return &Proc{
		PID:   pid,
		CUDA:  api,
		Env:   c.spec.Env,
		Ctx:   ctx,
		Clock: c.engine.cfg.Clock,
	}, cleanup, nil
}

// Start launches the container's entrypoint program.
func (c *Container) Start() error {
	c.mu.Lock()
	if c.state != Created {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrBadState, c.id, c.state)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.ctx, c.cancel = ctx, cancel
	c.state = Running
	c.mu.Unlock()

	proc, cleanup, err := c.newProc(ctx)
	if err != nil {
		cancel()
		c.exit(err)
		return err
	}
	c.mu.Lock()
	c.procs = append(c.procs, proc.PID)
	c.mu.Unlock()
	c.procWG.Add(1)
	go func() {
		defer c.procWG.Done()
		err := c.runProgram(proc, c.spec.Program)
		cleanup()
		// Docker semantics: the container exits when its entrypoint
		// exits, regardless of exec'd processes.
		c.exit(err)
	}()
	return nil
}

// runProgram executes a program, converting panics into errors so one
// misbehaving container cannot take the host down — the isolation the
// paper's Consistency goal demands.
func (c *Container) runProgram(proc *Proc, prog Program) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("container: program panicked: %v", r)
		}
		// The runtime implicitly unregisters the fat binary when the
		// process exits, even if the program forgot to clean up.
		proc.CUDA.UnregisterFatBinary()
	}()
	return prog(proc)
}

// Exec runs an additional program as another process in the container
// (docker exec) and returns its error after completion.
func (c *Container) Exec(prog Program) error {
	c.mu.Lock()
	if c.state != Running {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrBadState, c.id, c.state)
	}
	ctx := c.ctx // exec'd processes share the container's lifetime
	c.mu.Unlock()
	proc, cleanup, err := c.newProc(ctx)
	if err != nil {
		return err
	}
	defer cleanup()
	c.mu.Lock()
	c.procs = append(c.procs, proc.PID)
	c.mu.Unlock()
	return c.runProgram(proc, prog)
}

// exit transitions to Exited and fires hooks exactly once.
func (c *Container) exit(runErr error) {
	c.exitOnce.Do(func() {
		c.mu.Lock()
		c.state = Exited
		c.runErr = runErr
		hooks := c.hooks
		c.hooks = nil
		c.mu.Unlock()
		for _, h := range hooks {
			h(c, runErr)
		}
		close(c.done)
	})
}

// Stop cancels the container's processes and waits for exit.
func (c *Container) Stop() {
	c.mu.Lock()
	cancel := c.cancel
	st := c.state
	c.mu.Unlock()
	if st != Running {
		return
	}
	if cancel != nil {
		cancel()
	}
	<-c.done
}

// Wait blocks until the container exits and returns the program's error.
func (c *Container) Wait() error {
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runErr
}

// PIDs returns the host pids of the container's processes.
func (c *Container) PIDs() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, len(c.procs))
	copy(out, c.procs)
	return out
}

// Spec returns a copy of the creation spec.
func (c *Container) Spec() Spec { return c.spec }
