// Package leak provides a snapshot-and-diff goroutine leak check for
// tests. The pattern appears all over the suite — a daemon, an ipc
// server, a reconnector, or a wrapper report loop each own background
// goroutines, and a test that forgets to wind one down passes today and
// poisons every later test's baseline. Call Check(t) at the top of a
// test; when the test (including its subtests) finishes, every
// goroutine that was not already running at the call must be gone.
//
// The diff is by goroutine ID, not by count: a concurrent test
// elsewhere finishing early cannot mask a leak here, and the failure
// message shows only the stacks of the goroutines this test actually
// leaked, not the whole world.
package leak

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// maxWait bounds the wind-down grace period. Goroutine teardown is
// asynchronous almost everywhere (a Close returns before the read loop
// observes it), so the check polls instead of demanding instant quiet.
// A variable only so the package's own failure-path test does not stall
// for the full grace period.
var maxWait = 5 * time.Second

// ignoredStacks marks goroutines the runtime or the testing framework
// own; they come and go on their own schedule and are never a leak the
// test under check can fix.
var ignoredStacks = []string{
	"testing.(*T).Run",            // a sibling test's goroutine
	"testing.(*F).Fuzz",           // fuzz worker plumbing
	"testing.runFuzzing",          //
	"runtime.goexit",              // header-only remnants
	"runtime/pprof.profileWriter", //
	"os/signal.signal_recv",       //
	"os/signal.loop",              //
}

// Check snapshots the running goroutines and registers a cleanup that
// fails t if, once the test is over, goroutines born after the snapshot
// are still running. Call it before starting the code under test.
func Check(t testing.TB) {
	t.Helper()
	base := ids(stacks())
	t.Cleanup(func() {
		deadline := time.Now().Add(maxWait)
		var leaked []goroutineStack
		for {
			leaked = leakedSince(base)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%d goroutine(s) leaked by this test:\n", len(leaked))
		for _, g := range leaked {
			b.WriteString("\n")
			b.WriteString(g.text)
		}
		t.Error(b.String())
	})
}

// goroutineStack is one parsed block of runtime.Stack output.
type goroutineStack struct {
	id   int64
	text string
}

// stacks parses an all-goroutine dump into per-goroutine blocks.
func stacks() []goroutineStack {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []goroutineStack
	for _, block := range strings.Split(string(buf), "\n\n") {
		if block == "" {
			continue
		}
		// Header: "goroutine 123 [state]:"
		rest, ok := strings.CutPrefix(block, "goroutine ")
		if !ok {
			continue
		}
		numEnd := strings.IndexByte(rest, ' ')
		if numEnd < 0 {
			continue
		}
		id, err := strconv.ParseInt(rest[:numEnd], 10, 64)
		if err != nil {
			continue
		}
		out = append(out, goroutineStack{id: id, text: block})
	}
	return out
}

func ids(gs []goroutineStack) map[int64]bool {
	m := make(map[int64]bool, len(gs))
	for _, g := range gs {
		m[g.id] = true
	}
	return m
}

// leakedSince returns the goroutines running now that are neither in
// the baseline nor owned by the runtime/test framework.
func leakedSince(base map[int64]bool) []goroutineStack {
	var out []goroutineStack
	for _, g := range stacks() {
		if base[g.id] || ignored(g.text) {
			continue
		}
		out = append(out, g)
	}
	return out
}

func ignored(stack string) bool {
	for _, s := range ignoredStacks {
		if strings.Contains(stack, s) {
			return true
		}
	}
	return false
}
