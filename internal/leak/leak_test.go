package leak

import (
	"testing"
	"time"
)

// fakeT records failures instead of failing the real test, and runs its
// cleanups on demand like the end of a test would.
type fakeT struct {
	testing.TB // panics on anything not overridden
	cleanups   []func()
	failed     bool
	msg        string
}

func (f *fakeT) Helper()           {}
func (f *fakeT) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }
func (f *fakeT) Error(args ...any) { f.failed = true; f.msg, _ = args[0].(string) }
func (f *fakeT) finish() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestCheckPassesWhenGoroutinesWindDown(t *testing.T) {
	ft := &fakeT{}
	Check(ft)
	done := make(chan struct{})
	stop := make(chan struct{})
	go func() { <-stop; close(done) }()
	close(stop)
	<-done
	ft.finish()
	if ft.failed {
		t.Fatalf("Check failed on a wound-down goroutine:\n%s", ft.msg)
	}
}

func TestCheckCatchesLeak(t *testing.T) {
	defer func(w time.Duration) { maxWait = w }(maxWait)
	maxWait = 50 * time.Millisecond
	ft := &fakeT{}
	Check(ft)
	stop := make(chan struct{})
	go func() { <-stop }() // leaks until we close stop below
	ft.finish()
	close(stop)
	if !ft.failed {
		t.Fatal("Check missed a leaked goroutine")
	}
}

func TestCheckIgnoresBaselineGoroutines(t *testing.T) {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { <-stop; close(done) }() // alive before the snapshot
	ft := &fakeT{}
	Check(ft)
	ft.finish()
	close(stop)
	<-done
	if ft.failed {
		t.Fatalf("Check blamed a baseline goroutine:\n%s", ft.msg)
	}
	// Give unrelated tests a clean world again.
	time.Sleep(time.Millisecond)
}
