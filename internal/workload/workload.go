// Package workload provides the evaluation workloads of the paper's
// Section IV: the AWS-T2-style container type table (Table III), the
// sample program used for the scheduling experiments ("allocates maximum
// GPU memory and the same size of CPU memory ... copies dummy data from
// CPU memory to GPU, calculates the complement, and returns the result"),
// the TensorFlow-MNIST-like training workload for the end-to-end overhead
// experiment (Fig. 6), and the randomized cloud trace the Fig. 7/8 sweeps
// replay ("emulated the cloud usage by choosing the type of the
// containers randomly and running it every five seconds").
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/container"
	"convgpu/internal/core"
	"convgpu/internal/cuda"
)

// ContainerType is one row of the paper's Table III.
type ContainerType struct {
	// Index orders the types by size (0 = nano ... 5 = xlarge).
	Index int
	// Name is the T2-style type name.
	Name string
	// VCPU is the vCPU count (informational; GPU scheduling ignores it).
	VCPU int
	// Memory is the CPU memory of the type.
	Memory bytesize.Size
	// GPUMemory is the GPU memory limit the container declares.
	GPUMemory bytesize.Size
}

// Types returns Table III in size order.
func Types() []ContainerType {
	return []ContainerType{
		{0, "nano", 1, 512 * bytesize.MiB, 128 * bytesize.MiB},
		{1, "micro", 1, 1 * bytesize.GiB, 256 * bytesize.MiB},
		{2, "small", 1, 2 * bytesize.GiB, 512 * bytesize.MiB},
		{3, "medium", 2, 4 * bytesize.GiB, 1024 * bytesize.MiB},
		{4, "large", 2, 8 * bytesize.GiB, 2048 * bytesize.MiB},
		{5, "xlarge", 4, 16 * bytesize.GiB, 4096 * bytesize.MiB},
	}
}

// TypeByName resolves a Table III type by name.
func TypeByName(name string) (ContainerType, error) {
	for _, t := range Types() {
		if t.Name == strings.ToLower(strings.TrimSpace(name)) {
			return t, nil
		}
	}
	return ContainerType{}, fmt.Errorf("workload: unknown container type %q", name)
}

// SampleDuration is the sample program's nominal compute time: "The time
// consumed by the sample program varies by the size, from 5 seconds to
// 45 seconds" — linear in the type index across the six types.
func (ct ContainerType) SampleDuration() time.Duration {
	return time.Duration(5+8*ct.Index) * time.Second
}

// AllocSize is the GPU allocation the sample program makes: the maximum
// usable memory of its type, i.e. the limit minus the per-process CUDA
// context overhead the scheduler accounts (paper §III-D).
func (ct ContainerType) AllocSize() bytesize.Size {
	s := ct.GPUMemory - core.DefaultContextOverhead
	if s <= 0 {
		return bytesize.MiB
	}
	return s
}

// SampleProgram builds the paper's evaluation sample program. scale
// compresses simulated kernel time (1.0 = the paper's 5–45 s; benches
// and examples use much smaller values). The program:
//
//	alloc(limit - overhead) -> memcpy host->device -> complement kernel
//	-> memcpy device->host -> free
//
// An allocation failure is returned as-is: without ConVGPU that is the
// program failure the paper's introduction demonstrates; with ConVGPU it
// only happens if the request exceeds the container's own limit.
func SampleProgram(ct ContainerType, scale float64) container.Program {
	if scale <= 0 {
		scale = 1
	}
	return func(p *container.Proc) error {
		size := ct.AllocSize()
		ptr, err := p.CUDA.Malloc(size)
		if err != nil {
			return fmt.Errorf("workload(%s): alloc %v: %w", ct.Name, size, err)
		}
		defer p.CUDA.Free(ptr)
		if err := p.CUDA.Memcpy(ptr, size, cuda.MemcpyHostToDevice); err != nil {
			return fmt.Errorf("workload(%s): copy in: %w", ct.Name, err)
		}
		dur := time.Duration(float64(ct.SampleDuration()) * scale)
		if err := p.CUDA.LaunchKernel(cuda.Kernel{Name: "complement", Duration: dur}, 0); err != nil {
			return fmt.Errorf("workload(%s): launch: %w", ct.Name, err)
		}
		if err := p.CUDA.DeviceSynchronize(); err != nil {
			return fmt.Errorf("workload(%s): sync: %w", ct.Name, err)
		}
		if err := p.CUDA.Memcpy(ptr, size, cuda.MemcpyDeviceToHost); err != nil {
			return fmt.Errorf("workload(%s): copy out: %w", ct.Name, err)
		}
		return nil
	}
}

// MNISTConfig parameterizes the Fig. 6 end-to-end workload: a CNN
// training loop in the shape of the TensorFlow MNIST tutorial the paper
// benchmarks (402 s without ConVGPU on the K20m).
type MNISTConfig struct {
	// Steps is the number of training iterations (default 200).
	Steps int
	// StepTime is the simulated GPU time per training step (default
	// 20 ms, the tutorial's ~402 s / 20000 steps on the K20m).
	StepTime time.Duration
	// BatchBytes is the per-step host<->device traffic (default 4 MiB:
	// a 100-image float32 MNIST batch plus activations headroom).
	BatchBytes bytesize.Size
	// ParamAllocs is how many parameter/workspace tensors the framework
	// allocates at startup (default 16).
	ParamAllocs int
	// ParamBytes is the per-tensor size (default 16 MiB).
	ParamBytes bytesize.Size
	// ReallocEvery inserts an allocator grow/shrink cycle (an alloc+free
	// pair) every N steps, the way TF's BFC allocator occasionally turns
	// to cudaMalloc (default 50; 0 disables).
	ReallocEvery int
}

func (c MNISTConfig) withDefaults() MNISTConfig {
	if c.Steps == 0 {
		c.Steps = 200
	}
	if c.StepTime == 0 {
		c.StepTime = 20 * time.Millisecond
	}
	if c.BatchBytes == 0 {
		c.BatchBytes = 4 * bytesize.MiB
	}
	if c.ParamAllocs == 0 {
		c.ParamAllocs = 16
	}
	if c.ParamBytes == 0 {
		c.ParamBytes = 16 * bytesize.MiB
	}
	if c.ReallocEvery == 0 {
		c.ReallocEvery = 50
	}
	return c
}

// InterceptedCalls predicts how many wrapper round-trips one run incurs
// (allocs + frees + realloc cycles), used by EXPERIMENTS.md to relate
// per-call overhead to end-to-end overhead.
func (c MNISTConfig) InterceptedCalls() int {
	c = c.withDefaults()
	calls := 2 * c.ParamAllocs // alloc + free per tensor
	if c.ReallocEvery > 0 {
		calls += 2 * (c.Steps / c.ReallocEvery)
	}
	return calls
}

// MNISTProgram builds the Fig. 6 workload.
func MNISTProgram(cfg MNISTConfig) container.Program {
	cfg = cfg.withDefaults()
	return func(p *container.Proc) error {
		// Framework startup: parameter and workspace tensors.
		ptrs := make([]cuda.DevPtr, 0, cfg.ParamAllocs)
		for i := 0; i < cfg.ParamAllocs; i++ {
			ptr, err := p.CUDA.Malloc(cfg.ParamBytes)
			if err != nil {
				return fmt.Errorf("workload(mnist): param alloc %d: %w", i, err)
			}
			ptrs = append(ptrs, ptr)
		}
		defer func() {
			for _, ptr := range ptrs {
				p.CUDA.Free(ptr)
			}
		}()
		batch := ptrs[0]
		for step := 1; step <= cfg.Steps; step++ {
			if err := p.CUDA.Memcpy(batch, cfg.BatchBytes, cuda.MemcpyHostToDevice); err != nil {
				return fmt.Errorf("workload(mnist): step %d copy in: %w", step, err)
			}
			if err := p.CUDA.LaunchKernel(cuda.Kernel{Name: "train_step", Duration: cfg.StepTime}, 0); err != nil {
				return fmt.Errorf("workload(mnist): step %d launch: %w", step, err)
			}
			if err := p.CUDA.DeviceSynchronize(); err != nil {
				return err
			}
			if err := p.CUDA.Memcpy(batch, 4096, cuda.MemcpyDeviceToHost); err != nil { // loss scalar etc.
				return fmt.Errorf("workload(mnist): step %d copy out: %w", step, err)
			}
			if cfg.ReallocEvery > 0 && step%cfg.ReallocEvery == 0 {
				// BFC allocator growth: a transient workspace.
				ptr, err := p.CUDA.Malloc(cfg.ParamBytes)
				if err != nil {
					return fmt.Errorf("workload(mnist): step %d workspace: %w", step, err)
				}
				if err := p.CUDA.Free(ptr); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// TraceEntry is one container arrival in a Fig. 7/8 trace.
type TraceEntry struct {
	// Seq numbers the arrival (0-based).
	Seq int
	// Type is the randomly drawn Table III type.
	Type ContainerType
	// Arrival is the offset from trace start.
	Arrival time.Duration
}

// DefaultSpacing is the paper's arrival cadence: a new container every
// five seconds.
const DefaultSpacing = 5 * time.Second

// GenerateTrace draws n container arrivals with uniformly random types
// at fixed spacing, reproducing the paper's cloud emulation. The same
// seed yields the same trace, so the four algorithms face identical
// workloads within a repetition — matching the paper's methodology of
// comparing algorithms on the same randomized load.
func GenerateTrace(n int, spacing time.Duration, seed int64) []TraceEntry {
	rng := rand.New(rand.NewSource(seed))
	types := Types()
	out := make([]TraceEntry, n)
	for i := 0; i < n; i++ {
		out[i] = TraceEntry{
			Seq:     i,
			Type:    types[rng.Intn(len(types))],
			Arrival: time.Duration(i) * spacing,
		}
	}
	return out
}

// GeneratePoissonTrace draws n arrivals as a Poisson process with the
// given mean spacing — the natural model of independent cloud tenants,
// of which the paper's fixed five-second cadence is the deterministic
// approximation. Bursts (several arrivals in quick succession) stress
// the scheduler harder than the uniform trace at the same mean rate.
func GeneratePoissonTrace(n int, meanSpacing time.Duration, seed int64) []TraceEntry {
	rng := rand.New(rand.NewSource(seed))
	types := Types()
	out := make([]TraceEntry, n)
	var at time.Duration
	for i := 0; i < n; i++ {
		out[i] = TraceEntry{
			Seq:     i,
			Type:    types[rng.Intn(len(types))],
			Arrival: at,
		}
		// Exponential inter-arrival with the given mean.
		at += time.Duration(rng.ExpFloat64() * float64(meanSpacing))
	}
	return out
}

// GenerateBurstyTrace draws n arrivals from a two-state Markov-modulated
// Poisson process (MMPP-2): a calm state at the base rate and a burst
// state at burst× that rate, with exponentially distributed dwell times
// in each state. It is the canonical model of correlated demand — many
// tenants deploying at once, a serving fleet retrying in sync — and
// produces the heavy arrival tails an open-loop SLO evaluation needs
// that a plain Poisson process cannot. meanSpacing is the calm-state
// mean inter-arrival; burst >= 1 multiplies the rate while bursting
// (burst <= 1 degenerates to Poisson). Dwell times average 20 arrivals
// calm and 10 arrivals bursting, so a trace alternates regimes several
// times regardless of n.
func GenerateBurstyTrace(n int, meanSpacing time.Duration, burst float64, seed int64) []TraceEntry {
	if burst < 1 {
		burst = 1
	}
	rng := rand.New(rand.NewSource(seed))
	types := Types()
	out := make([]TraceEntry, n)
	var at time.Duration
	bursting := false
	// Remaining dwell time in the current state.
	dwell := time.Duration(rng.ExpFloat64() * float64(meanSpacing) * 20)
	for i := 0; i < n; i++ {
		out[i] = TraceEntry{
			Seq:     i,
			Type:    types[rng.Intn(len(types))],
			Arrival: at,
		}
		spacing := meanSpacing
		if bursting {
			spacing = time.Duration(float64(meanSpacing) / burst)
		}
		step := time.Duration(rng.ExpFloat64() * float64(spacing))
		for step >= dwell {
			// State flips mid-gap: spend the dwell remainder, then redraw
			// the step at the new state's rate for the rest of the gap.
			at += dwell
			step -= dwell
			bursting = !bursting
			if bursting {
				dwell = time.Duration(rng.ExpFloat64() * float64(meanSpacing) * 10 / burst)
				step = time.Duration(rng.ExpFloat64() * float64(meanSpacing) / burst)
			} else {
				dwell = time.Duration(rng.ExpFloat64() * float64(meanSpacing) * 20)
				step = time.Duration(rng.ExpFloat64() * float64(meanSpacing))
			}
		}
		dwell -= step
		at += step
	}
	return out
}

// GenerateDiurnalTrace draws n arrivals from a non-homogeneous Poisson
// process whose rate follows a sinusoidal day/night cycle:
//
//	rate(t) = base * (1 + amplitude*sin(2πt/period))
//
// sampled by thinning (Lewis & Shedler): candidates are drawn at the
// peak rate and kept with probability rate(t)/peak. meanSpacing is the
// base (time-averaged) inter-arrival, period the cycle length, and
// amplitude in [0,1) the swing — 0.8 means peak traffic is 9× the
// trough. The diurnal ramp is the regime where placement policies earn
// their keep: the trough drains the backlog and the next peak re-packs
// devices from a half-empty state.
func GenerateDiurnalTrace(n int, meanSpacing, period time.Duration, amplitude float64, seed int64) []TraceEntry {
	if amplitude < 0 {
		amplitude = 0
	}
	if amplitude >= 1 {
		amplitude = 0.999
	}
	if period <= 0 {
		period = 24 * time.Hour
	}
	rng := rand.New(rand.NewSource(seed))
	types := Types()
	base := 1 / float64(meanSpacing) // arrivals per ns
	peak := base * (1 + amplitude)
	out := make([]TraceEntry, n)
	var at time.Duration
	for i := 0; i < n; i++ {
		for {
			at += time.Duration(rng.ExpFloat64() / peak)
			phase := 2 * math.Pi * float64(at%period) / float64(period)
			rate := base * (1 + amplitude*math.Sin(phase))
			if rng.Float64()*peak <= rate {
				break
			}
		}
		out[i] = TraceEntry{
			Seq:     i,
			Type:    types[rng.Intn(len(types))],
			Arrival: at,
		}
	}
	return out
}
