package workload

import (
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/container"
	"convgpu/internal/core"
	"convgpu/internal/gpu"
)

func TestTypesMatchTableIII(t *testing.T) {
	want := []struct {
		name string
		vcpu int
		mem  bytesize.Size
		gmem bytesize.Size
	}{
		{"nano", 1, 512 * bytesize.MiB, 128 * bytesize.MiB},
		{"micro", 1, 1 * bytesize.GiB, 256 * bytesize.MiB},
		{"small", 1, 2 * bytesize.GiB, 512 * bytesize.MiB},
		{"medium", 2, 4 * bytesize.GiB, 1024 * bytesize.MiB},
		{"large", 2, 8 * bytesize.GiB, 2048 * bytesize.MiB},
		{"xlarge", 4, 16 * bytesize.GiB, 4096 * bytesize.MiB},
	}
	got := Types()
	if len(got) != len(want) {
		t.Fatalf("Types() has %d entries, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Index != i || g.Name != w.name || g.VCPU != w.vcpu || g.Memory != w.mem || g.GPUMemory != w.gmem {
			t.Errorf("Types()[%d] = %+v, want %+v", i, g, w)
		}
	}
}

func TestTypeByName(t *testing.T) {
	ct, err := TypeByName(" Medium ")
	if err != nil {
		t.Fatal(err)
	}
	if ct.Name != "medium" || ct.GPUMemory != 1024*bytesize.MiB {
		t.Fatalf("TypeByName(medium) = %+v", ct)
	}
	if _, err := TypeByName("mega"); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestSampleDurationRange(t *testing.T) {
	types := Types()
	if d := types[0].SampleDuration(); d != 5*time.Second {
		t.Errorf("nano duration = %v, want 5s", d)
	}
	if d := types[5].SampleDuration(); d != 45*time.Second {
		t.Errorf("xlarge duration = %v, want 45s", d)
	}
	for i := 1; i < len(types); i++ {
		if types[i].SampleDuration() <= types[i-1].SampleDuration() {
			t.Errorf("durations not increasing at %s", types[i].Name)
		}
	}
}

func TestAllocSizeLeavesOverheadRoom(t *testing.T) {
	for _, ct := range Types() {
		if got := ct.AllocSize(); got+core.DefaultContextOverhead != ct.GPUMemory {
			t.Errorf("%s AllocSize = %v; +overhead != %v", ct.Name, got, ct.GPUMemory)
		}
	}
	tiny := ContainerType{GPUMemory: bytesize.MiB}
	if got := tiny.AllocSize(); got <= 0 {
		t.Errorf("degenerate AllocSize = %v", got)
	}
}

func runProgram(t *testing.T, prog container.Program) error {
	t.Helper()
	eng, err := container.NewEngine(container.Config{Device: gpu.New(gpu.K20m())})
	if err != nil {
		t.Fatal(err)
	}
	c, err := eng.Create(container.Spec{Name: "w", Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	return c.Wait()
}

func TestSampleProgramRunsOnRawDevice(t *testing.T) {
	// Scale ~0: the kernel is instantaneous; copies still take their
	// PCIe time (62 MiB, ~10 ms).
	if err := runProgram(t, SampleProgram(Types()[0], 1e-9)); err != nil {
		t.Fatal(err)
	}
}

func TestSampleProgramCleansUp(t *testing.T) {
	dev := gpu.New(gpu.K20m())
	eng, _ := container.NewEngine(container.Config{Device: dev})
	c, _ := eng.Create(container.Spec{Name: "w", Program: SampleProgram(Types()[1], 1e-9)})
	c.Start()
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if used := dev.Used(); used != 0 {
		t.Fatalf("device used = %v after program exit", used)
	}
}

func TestMNISTDefaults(t *testing.T) {
	cfg := MNISTConfig{}.withDefaults()
	if cfg.Steps != 200 || cfg.StepTime != 20*time.Millisecond || cfg.ParamAllocs != 16 {
		t.Fatalf("defaults = %+v", cfg)
	}
	// 16 allocs + 16 frees + (200/50) realloc cycles x2 = 40.
	if got := (MNISTConfig{}).InterceptedCalls(); got != 40 {
		t.Fatalf("InterceptedCalls = %d, want 40", got)
	}
}

func TestMNISTProgramRuns(t *testing.T) {
	cfg := MNISTConfig{Steps: 10, StepTime: time.Microsecond, BatchBytes: 4096, ParamAllocs: 4, ParamBytes: bytesize.MiB, ReallocEvery: 5}
	if err := runProgram(t, MNISTProgram(cfg)); err != nil {
		t.Fatal(err)
	}
}

func TestMNISTProgramLeavesDeviceClean(t *testing.T) {
	dev := gpu.New(gpu.K20m())
	eng, _ := container.NewEngine(container.Config{Device: dev})
	cfg := MNISTConfig{Steps: 6, StepTime: 0, BatchBytes: 4096, ParamAllocs: 3, ParamBytes: bytesize.MiB, ReallocEvery: 2}
	c, _ := eng.Create(container.Spec{Name: "m", Program: MNISTProgram(cfg)})
	c.Start()
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if used := dev.Used(); used != 0 {
		t.Fatalf("device used = %v after MNIST exit", used)
	}
}

func TestGenerateTraceProperties(t *testing.T) {
	trace := GenerateTrace(38, DefaultSpacing, 42)
	if len(trace) != 38 {
		t.Fatalf("trace length = %d", len(trace))
	}
	for i, e := range trace {
		if e.Seq != i {
			t.Errorf("entry %d Seq = %d", i, e.Seq)
		}
		if e.Arrival != time.Duration(i)*5*time.Second {
			t.Errorf("entry %d arrival = %v", i, e.Arrival)
		}
		if e.Type.Name == "" {
			t.Errorf("entry %d has no type", i)
		}
	}
	// Determinism per seed.
	again := GenerateTrace(38, DefaultSpacing, 42)
	for i := range trace {
		if trace[i].Type.Name != again[i].Type.Name {
			t.Fatalf("same seed diverged at entry %d", i)
		}
	}
	// Different seeds differ somewhere (overwhelmingly likely).
	other := GenerateTrace(38, DefaultSpacing, 43)
	same := true
	for i := range trace {
		if trace[i].Type.Name != other[i].Type.Name {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGeneratePoissonTrace(t *testing.T) {
	trace := GeneratePoissonTrace(100, 5*time.Second, 11)
	if len(trace) != 100 {
		t.Fatalf("length = %d", len(trace))
	}
	if trace[0].Arrival != 0 {
		t.Fatalf("first arrival = %v, want 0", trace[0].Arrival)
	}
	var last time.Duration
	for i, e := range trace {
		if e.Seq != i {
			t.Fatalf("entry %d Seq = %d", i, e.Seq)
		}
		if e.Arrival < last {
			t.Fatalf("arrivals not monotone at %d: %v < %v", i, e.Arrival, last)
		}
		last = e.Arrival
	}
	// Mean inter-arrival approaches the configured mean (99 gaps; the
	// sample mean of an exponential concentrates well at this size).
	mean := trace[99].Arrival / 99
	if mean < 3*time.Second || mean > 7*time.Second {
		t.Fatalf("mean inter-arrival = %v, want ~5s", mean)
	}
	// Determinism per seed.
	again := GeneratePoissonTrace(100, 5*time.Second, 11)
	for i := range trace {
		if trace[i].Arrival != again[i].Arrival || trace[i].Type.Name != again[i].Type.Name {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestGenerateTraceCoversAllTypes(t *testing.T) {
	trace := GenerateTrace(200, time.Second, 7)
	seen := map[string]bool{}
	for _, e := range trace {
		seen[e.Type.Name] = true
	}
	for _, ct := range Types() {
		if !seen[ct.Name] {
			t.Errorf("type %s never drawn in 200 arrivals", ct.Name)
		}
	}
}

func TestGenerateBurstyTrace(t *testing.T) {
	trace := GenerateBurstyTrace(400, time.Second, 8, 21)
	var last time.Duration
	for i, e := range trace {
		if e.Seq != i {
			t.Fatalf("entry %d Seq = %d", i, e.Seq)
		}
		if e.Arrival < last {
			t.Fatalf("arrivals not monotone at %d: %v < %v", i, e.Arrival, last)
		}
		last = e.Arrival
	}
	// Determinism per seed.
	again := GenerateBurstyTrace(400, time.Second, 8, 21)
	for i := range trace {
		if trace[i].Arrival != again[i].Arrival || trace[i].Type.Name != again[i].Type.Name {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	// The burst state must actually compress inter-arrivals: the
	// shortest decile of gaps should be far below the calm mean, and the
	// whole trace should finish faster than a pure calm-rate Poisson
	// trace of the same length would on average.
	short := 0
	for i := 1; i < len(trace); i++ {
		if trace[i].Arrival-trace[i-1].Arrival < time.Second/4 {
			short++
		}
	}
	if short < len(trace)/10 {
		t.Fatalf("only %d/%d gaps below 250ms — MMPP burst state never engaged", short, len(trace))
	}
	// burst=1 degenerates to Poisson pacing: mean spacing near 1s.
	calm := GenerateBurstyTrace(400, time.Second, 1, 21)
	mean := calm[len(calm)-1].Arrival / time.Duration(len(calm)-1)
	if mean < 600*time.Millisecond || mean > 1400*time.Millisecond {
		t.Fatalf("burst=1 mean inter-arrival = %v, want ~1s", mean)
	}
}

func TestGenerateDiurnalTrace(t *testing.T) {
	period := 100 * time.Second
	trace := GenerateDiurnalTrace(600, time.Second, period, 0.8, 33)
	var last time.Duration
	for i, e := range trace {
		if e.Arrival < last {
			t.Fatalf("arrivals not monotone at %d", i)
		}
		last = e.Arrival
	}
	again := GenerateDiurnalTrace(600, time.Second, period, 0.8, 33)
	for i := range trace {
		if trace[i].Arrival != again[i].Arrival {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	// The first half-period of each cycle (rate above base) must receive
	// more arrivals than the second (rate below base): count arrivals by
	// cycle phase over the whole trace.
	up, down := 0, 0
	for _, e := range trace {
		if e.Arrival%period < period/2 {
			up++
		} else {
			down++
		}
	}
	if up <= down {
		t.Fatalf("diurnal ramp missing: %d arrivals in the up phase vs %d in the down phase", up, down)
	}
}
