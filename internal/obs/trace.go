package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// DefaultTraceCapacity is the event ring size used when a Tracer is
// built with capacity 0.
const DefaultTraceCapacity = 4096

// TraceEvent is one scheduler event in the trace ring. Seq totally
// orders events across the whole scheduler; CSeq is the per-container
// causal sequence (1, 2, 3, ... within one container lifetime), so a
// consumer can reconstruct each container's history even after the
// ring has dropped interleaved events from other containers.
type TraceEvent struct {
	Seq       uint64 `json:"seq"`
	CSeq      uint64 `json:"cseq,omitempty"`
	At        int64  `json:"at_unix_nano"`
	Kind      string `json:"kind"`
	Container string `json:"container,omitempty"`
	PID       int    `json:"pid,omitempty"`
	Amount    int64  `json:"amount,omitempty"`
	Device    int    `json:"device,omitempty"`
	Ticket    uint64 `json:"ticket,omitempty"`
	// RequestID ties admin-plane events to the HTTP request that caused
	// them; Detail carries the verb's free-form context (a node number,
	// an operation ID). Both empty for scheduler events.
	RequestID string `json:"request_id,omitempty"`
	Detail    string `json:"detail,omitempty"`
}

// Tracer is a fixed-capacity ring buffer of TraceEvents. Recording
// copies a value struct under a short mutex — no allocation in steady
// state (the per-container sequence map allocates only on a container's
// first event). A capacity < 0 disables retention entirely while still
// assigning causal sequence numbers.
type Tracer struct {
	mu   sync.Mutex
	ring []TraceEvent
	next int    // ring write cursor
	n    int    // number of valid entries (≤ len(ring))
	seq  uint64 // total events ever recorded
	cseq map[string]uint64
}

// NewTracer returns a tracer holding the last capacity events
// (DefaultTraceCapacity if capacity is 0, retention disabled if < 0).
func NewTracer(capacity int) *Tracer {
	if capacity == 0 {
		capacity = DefaultTraceCapacity
	}
	t := &Tracer{cseq: make(map[string]uint64)}
	if capacity > 0 {
		t.ring = make([]TraceEvent, capacity)
	}
	return t
}

// Record appends one event. Seq and CSeq are assigned here, under the
// tracer's own ordering, from the fields the caller provides. ticket is
// the parked-request ticket for suspend/resume/drop kinds (0 otherwise).
func (t *Tracer) Record(at time.Time, kind, container string, pid int, amount int64, device int, ticket uint64) {
	t.mu.Lock()
	t.seq++
	e := TraceEvent{
		Seq:       t.seq,
		At:        at.UnixNano(),
		Kind:      kind,
		Container: container,
		PID:       pid,
		Amount:    amount,
		Device:    device,
		Ticket:    ticket,
	}
	if container != "" {
		t.cseq[container]++
		e.CSeq = t.cseq[container]
	}
	if len(t.ring) > 0 {
		t.ring[t.next] = e
		t.next = (t.next + 1) % len(t.ring)
		if t.n < len(t.ring) {
			t.n++
		}
	}
	t.mu.Unlock()
}

// RecordAdmin appends one admin-plane event: kind names the verb
// ("admin_drain", "admin_compact"), requestID the X-Request-Id of the
// HTTP call, detail the target. Admin events share the ring and the
// total order with scheduler events, so an operator sees the drain
// between the grants it interleaved with.
func (t *Tracer) RecordAdmin(at time.Time, kind, requestID, detail string) {
	t.mu.Lock()
	t.seq++
	e := TraceEvent{
		Seq:       t.seq,
		At:        at.UnixNano(),
		Kind:      kind,
		RequestID: requestID,
		Detail:    detail,
	}
	if len(t.ring) > 0 {
		t.ring[t.next] = e
		t.next = (t.next + 1) % len(t.ring)
		if t.n < len(t.ring) {
			t.n++
		}
	}
	t.mu.Unlock()
}

// EndContainer forgets a container's causal counter — called when its
// lifetime ends (close), so the cseq map does not grow with container
// churn and a re-registered ID restarts its causal order at 1.
func (t *Tracer) EndContainer(container string) {
	t.mu.Lock()
	delete(t.cseq, container)
	t.mu.Unlock()
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Events returns the retained events, oldest first. An empty container
// filter returns everything; otherwise only that container's events.
func (t *Tracer) Events(container string) []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		e := t.ring[(start+i)%len(t.ring)]
		if container == "" || e.Container == container {
			out = append(out, e)
		}
	}
	return out
}

// Page returns up to limit retained events with Seq > after, oldest
// first (limit <= 0 means no bound), plus whether more remain. This is
// the cursor shape long trace retrieval pages over: a consumer replays
// the whole ring in bounded frames by passing the last Seq it saw.
func (t *Tracer) Page(container string, after uint64, limit int) (events []TraceEvent, more bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	start := t.next - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		e := t.ring[(start+i)%len(t.ring)]
		if e.Seq <= after {
			continue
		}
		if container != "" && e.Container != container {
			continue
		}
		if limit > 0 && len(events) == limit {
			return events, true
		}
		events = append(events, e)
	}
	return events, false
}

// TraceDump is the JSON shape of a trace request's payload. NextAfter
// and More describe the page cursor: when More is true the consumer
// re-requests with after=NextAfter for the next page.
type TraceDump struct {
	Capacity  int          `json:"capacity"`
	Total     uint64       `json:"total_events"`
	Dropped   uint64       `json:"dropped_events"`
	Events    []TraceEvent `json:"events"`
	NextAfter uint64       `json:"next_after,omitempty"`
	More      bool         `json:"more,omitempty"`
}

// Dump renders the retained trace (optionally filtered by container)
// as JSON, oldest event first, with drop accounting so a consumer can
// tell whether the ring wrapped.
func (t *Tracer) Dump(container string) ([]byte, error) {
	return t.DumpLimit(container, 0)
}

// DumpLimit is Dump keeping only the newest limit events (0 = all).
// The daemon uses it to keep a trace response inside one IPC frame.
func (t *Tracer) DumpLimit(container string, limit int) ([]byte, error) {
	events := t.Events(container)
	if limit > 0 && len(events) > limit {
		events = events[len(events)-limit:]
	}
	t.mu.Lock()
	d := TraceDump{Capacity: len(t.ring), Total: t.seq, Events: events}
	if t.seq > uint64(t.n) {
		d.Dropped = t.seq - uint64(t.n)
	}
	t.mu.Unlock()
	return json.Marshal(d)
}

// DumpPage renders one page of the trace (events with Seq > after,
// oldest first, at most limit of them) with the cursor fields set, so
// a long trace is retrieved whole across several bounded frames
// instead of silently truncated to the newest window.
func (t *Tracer) DumpPage(container string, after uint64, limit int) ([]byte, error) {
	events, more := t.Page(container, after, limit)
	t.mu.Lock()
	d := TraceDump{Capacity: len(t.ring), Total: t.seq, Events: events, More: more}
	if t.seq > uint64(t.n) {
		d.Dropped = t.seq - uint64(t.n)
	}
	t.mu.Unlock()
	if more && len(events) > 0 {
		d.NextAfter = events[len(events)-1].Seq
	}
	return json.Marshal(d)
}
