// Package obs is ConVGPU's runtime observability layer: lock-free
// counters and fixed-bucket latency histograms for the scheduler's hot
// path, a ring-buffer event tracer with per-container causal ordering,
// and export surfaces (Prometheus text, JSON, expvar/pprof over HTTP)
// for the daemon's introspection protocol.
//
// Everything a hot path touches is a plain atomic operation: recording
// a counter increment or a histogram observation allocates nothing and
// takes no lock, so the 0 allocs/op accept path of DESIGN.md §7 is
// preserved with observability enabled. Aggregation cost — snapshots,
// JSON rendering, gauge evaluation — is paid only when somebody asks
// (a `stats` message on the control socket, a /metrics scrape).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value. The zero Counter is
// ready to use; all methods are safe for concurrent use and lock-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// HistBuckets is the number of exponential latency buckets. Bucket i
// holds observations at or below 1µs·2^i, so the range spans 1µs to
// ~16s before the overflow bucket — wide enough for a 35µs paper-scale
// API call and for a multi-second suspension alike.
const HistBuckets = 25

// Histogram is a fixed-bucket latency histogram: exponential bucket
// bounds, atomic counters, no locks, no allocation per observation.
// The zero Histogram is ready to use.
type Histogram struct {
	counts [HistBuckets + 1]atomic.Uint64 // +1: overflow bucket
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// bucketOf maps nanoseconds to a bucket index: the smallest i with
// ns <= 1000<<i, computed with one bit-length instruction.
func bucketOf(ns int64) int {
	us := uint64(ns) / 1000
	if us <= 1 {
		return 0
	}
	i := bits.Len64(us - 1) // ceil(log2(us))
	if i > HistBuckets {
		return HistBuckets
	}
	return i
}

// BucketBound returns the inclusive upper bound of bucket i; the last
// bucket (index HistBuckets) is unbounded.
func BucketBound(i int) time.Duration {
	return time.Microsecond << i
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	SumNs   int64    `json:"sum_ns"`
	Buckets []uint64 `json:"buckets"` // cumulative is derived by readers
}

// Snapshot copies the histogram. The per-bucket loads are not mutually
// atomic — a scrape racing observations may be off by in-flight ops —
// which is the standard contract for lock-free metric export.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		SumNs:   h.sum.Load(),
		Buckets: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// Labels attaches dimensions (e.g. algorithm, socket) to a metric.
type Labels map[string]string

// render produces the canonical `{k="v",...}` form, keys sorted, so a
// (name, labels) pair has exactly one identity in the registry.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// metricKind discriminates registry entries.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// metricItem is one registered metric.
type metricItem struct {
	name   string
	help   string
	labels Labels
	lstr   string // rendered labels, the identity suffix
	kind   metricKind

	counter *Counter
	hist    *Histogram
	gauge   func() int64
}

// Registry holds named metrics for export. Registration is idempotent
// on (name, labels): re-registering returns (or, for gauges, replaces)
// the existing entry, so a restarted daemon can rebind a long-lived
// registry without duplicating series.
type Registry struct {
	mu    sync.Mutex
	items []*metricItem
	index map[string]*metricItem // name + rendered labels
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metricItem)}
}

func (r *Registry) upsert(name, help string, labels Labels, kind metricKind) *metricItem {
	key := name + labels.render()
	if it, ok := r.index[key]; ok {
		return it
	}
	it := &metricItem{name: name, help: help, labels: labels, lstr: labels.render(), kind: kind}
	switch kind {
	case kindCounter:
		it.counter = &Counter{}
	case kindHistogram:
		it.hist = &Histogram{}
	}
	r.items = append(r.items, it)
	r.index[key] = it
	return it
}

// NewCounter registers (or retrieves) a counter.
func (r *Registry) NewCounter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.upsert(name, help, labels, kindCounter).counter
}

// NewHistogram registers (or retrieves) a latency histogram.
func (r *Registry) NewHistogram(name, help string, labels Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.upsert(name, help, labels, kindHistogram).hist
}

// GaugeFunc registers a gauge evaluated at export time — the natural
// shape for values the scheduler already maintains exactly (pool bytes,
// queue depth): zero hot-path cost, always-consistent reads. Re-register
// to replace the function (e.g. after a daemon restart swaps the core).
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	it := r.upsert(name, help, labels, kindGauge)
	it.gauge = fn
}

// snapshotItems copies the item list so export can run without the lock.
func (r *Registry) snapshotItems() []*metricItem {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metricItem, len(r.items))
	copy(out, r.items)
	return out
}

// MetricPoint is one metric in a JSON snapshot.
type MetricPoint struct {
	Name   string             `json:"name"`
	Kind   string             `json:"kind"`
	Labels Labels             `json:"labels,omitempty"`
	Value  int64              `json:"value,omitempty"`     // counter, gauge
	Hist   *HistogramSnapshot `json:"histogram,omitempty"` // histogram
}

// Snapshot returns every registered metric's current value, in
// registration order.
func (r *Registry) Snapshot() []MetricPoint {
	items := r.snapshotItems()
	out := make([]MetricPoint, 0, len(items))
	for _, it := range items {
		p := MetricPoint{Name: it.name, Kind: string(it.kind), Labels: it.labels}
		switch it.kind {
		case kindCounter:
			p.Value = int64(it.counter.Value())
		case kindGauge:
			if it.gauge != nil {
				p.Value = it.gauge()
			}
		case kindHistogram:
			s := it.hist.Snapshot()
			p.Hist = &s
		}
		out = append(out, p)
	}
	return out
}

// MarshalJSON renders the snapshot (Registry serializes as its points).
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (counters and gauges as single samples, histograms as
// cumulative _bucket/_sum/_count series with `le` in seconds).
func (r *Registry) WritePrometheus(w io.Writer) error {
	seen := make(map[string]bool)
	for _, it := range r.snapshotItems() {
		if !seen[it.name] {
			seen[it.name] = true
			if it.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", it.name, it.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", it.name, it.kind); err != nil {
				return err
			}
		}
		switch it.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", it.name, it.lstr, it.counter.Value()); err != nil {
				return err
			}
		case kindGauge:
			var v int64
			if it.gauge != nil {
				v = it.gauge()
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", it.name, it.lstr, v); err != nil {
				return err
			}
		case kindHistogram:
			if err := writePromHistogram(w, it); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram emits the cumulative bucket series for one
// histogram item.
func writePromHistogram(w io.Writer, it *metricItem) error {
	s := it.hist.Snapshot()
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		le := "+Inf"
		if i < HistBuckets {
			le = fmt.Sprintf("%g", BucketBound(i).Seconds())
		}
		if err := writePromSample(w, it.name+"_bucket", it.labels, "le", le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", it.name, it.lstr,
		time.Duration(s.SumNs).Seconds()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", it.name, it.lstr, s.Count)
	return err
}

// writePromSample emits one sample with the item's labels plus one
// extra label (the histogram `le`).
func writePromSample(w io.Writer, name string, labels Labels, extraK, extraV string, v uint64) error {
	merged := make(Labels, len(labels)+1)
	for k, val := range labels {
		merged[k] = val
	}
	merged[extraK] = extraV
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, merged.render(), v)
	return err
}
