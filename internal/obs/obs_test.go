package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero Counter = %d", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Counter = %d, want 5", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 0}, // sub-µs truncation: resolution is 1µs
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10}, // 1024µs bound
		{time.Second, 20},      // ~1.05s bound
		{time.Hour, HistBuckets},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.d.Nanoseconds()); got != tc.want {
			t.Errorf("bucketOf(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
	// Every bucket's bound must actually contain what bucketOf sends it.
	for i := 0; i < HistBuckets; i++ {
		if got := bucketOf(BucketBound(i).Nanoseconds()); got > i {
			t.Errorf("BucketBound(%d)=%v lands in bucket %d", i, BucketBound(i), got)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // clamped to 0, lands in bucket 0
	if h.Snapshot().Buckets[0] != 1 || h.Sum() != 0 {
		t.Fatalf("negative observation not clamped: %+v", h.Snapshot())
	}
	h = Histogram{}
	h.Observe(time.Microsecond)
	h.Observe(2 * time.Microsecond)
	h.Observe(time.Hour) // overflow bucket
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if want := time.Hour + 3*time.Microsecond; h.Sum() != want {
		t.Fatalf("Sum = %v, want %v", h.Sum(), want)
	}
	s := h.Snapshot()
	if s.Buckets[0] != 1 || s.Buckets[1] != 1 || s.Buckets[HistBuckets] != 1 {
		t.Fatalf("bucket spread = %v", s.Buckets)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("x_total", "help", Labels{"k": "v"})
	b := r.NewCounter("x_total", "help", Labels{"k": "v"})
	if a != b {
		t.Fatal("re-registering the same (name, labels) returned a new counter")
	}
	c := r.NewCounter("x_total", "help", Labels{"k": "w"})
	if a == c {
		t.Fatal("distinct labels shared a counter")
	}
	// Gauge re-registration replaces the function (daemon-restart rebind).
	r.GaugeFunc("g", "", nil, func() int64 { return 1 })
	r.GaugeFunc("g", "", nil, func() int64 { return 2 })
	for _, p := range r.Snapshot() {
		if p.Name == "g" && p.Value != 2 {
			t.Fatalf("gauge after rebind = %d, want 2", p.Value)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("convgpu_test_total", "A counter.", Labels{"algorithm": "fifo"}).Add(7)
	r.GaugeFunc("convgpu_test_gauge", "A gauge.", nil, func() int64 { return 42 })
	h := r.NewHistogram("convgpu_test_seconds", "A histogram.", Labels{"socket": "control"})
	h.Observe(3 * time.Microsecond)
	h.Observe(time.Hour)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE convgpu_test_total counter",
		`convgpu_test_total{algorithm="fifo"} 7`,
		"convgpu_test_gauge 42",
		"# TYPE convgpu_test_seconds histogram",
		`convgpu_test_seconds_bucket{le="+Inf",socket="control"} 2`,
		`convgpu_test_seconds_count{socket="control"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the 4µs bucket already holds the 3µs
	// observation, and +Inf holds both.
	if !strings.Contains(out, `convgpu_test_seconds_bucket{le="4e-06",socket="control"} 1`) {
		t.Errorf("cumulative bucket missing:\n%s", out)
	}
}

func TestTracerCausalOrder(t *testing.T) {
	tr := NewTracer(16)
	at := time.Unix(0, 1000)
	tr.Record(at, "register", "a", 0, 0, 0, 0)
	tr.Record(at, "register", "b", 0, 0, 0, 0)
	tr.Record(at, "accept", "a", 1, 100, 0, 0)
	tr.Record(at, "close", "a", 0, 0, 0, 0)
	tr.EndContainer("a")
	tr.Record(at, "register", "a", 0, 0, 0, 0) // re-registered ID restarts

	evs := tr.Events("a")
	if len(evs) != 4 {
		t.Fatalf("filtered events = %d, want 4", len(evs))
	}
	wantCSeq := []uint64{1, 2, 3, 1}
	for i, e := range evs {
		if e.CSeq != wantCSeq[i] {
			t.Errorf("event %d (%s) cseq = %d, want %d", i, e.Kind, e.CSeq, wantCSeq[i])
		}
	}
	// Global order is total and increasing.
	all := tr.Events("")
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatalf("global seq not increasing: %v", all)
		}
	}
}

func TestTracerWrapAndLimit(t *testing.T) {
	tr := NewTracer(4)
	at := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		tr.Record(at, "accept", "c", 1, int64(i), 0, 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	data, err := tr.DumpLimit("", 2)
	if err != nil {
		t.Fatal(err)
	}
	var d TraceDump
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	if d.Total != 10 || d.Dropped != 6 {
		t.Fatalf("total=%d dropped=%d, want 10/6", d.Total, d.Dropped)
	}
	if len(d.Events) != 2 || d.Events[1].Seq != 10 {
		t.Fatalf("limited dump kept %v", d.Events)
	}
	// Disabled retention still assigns sequence numbers.
	off := NewTracer(-1)
	off.Record(at, "accept", "c", 1, 0, 0, 0)
	if off.Len() != 0 {
		t.Fatal("disabled tracer retained events")
	}
}

// mib sizes test allocations.
func mib(n int) bytesize.Size { return bytesize.Size(n) * bytesize.MiB }

func TestBindCoreCountsEvents(t *testing.T) {
	st := core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1})
	o := New(Config{Algorithm: "fifo"})
	o.BindCore(st)

	if _, err := st.Register("c1", mib(500)); err != nil {
		t.Fatal(err)
	}
	res, err := st.RequestAlloc("c1", 1, mib(100))
	if err != nil || res.Decision != core.Accept {
		t.Fatalf("alloc: %v %v", res.Decision, err)
	}
	if err := st.ConfirmAlloc("c1", 1, 0x1000, mib(100)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Close("c1"); err != nil {
		t.Fatal(err)
	}

	if n := o.EventCount(core.EvRegister); n != 1 {
		t.Fatalf("register count = %d, want 1", n)
	}
	if n := o.EventCount(core.EvAccept); n != 1 {
		t.Fatalf("accept count = %d, want 1", n)
	}
	if n := o.EventCounts()["close"]; n != 1 {
		t.Fatalf("close count = %d, want 1", n)
	}
	// The trace mirrors the event log with causal order.
	evs := o.Tracer().Events("c1")
	if len(evs) == 0 || evs[0].Kind != "register" || evs[0].CSeq != 1 {
		t.Fatalf("trace = %+v", evs)
	}
	// Gauges read the live core: everything closed, pool fully free.
	var poolFree, containers int64 = -1, -1
	for _, p := range o.Registry().Snapshot() {
		switch p.Name {
		case MetricPoolFree:
			poolFree = p.Value
		case MetricContainers:
			containers = p.Value
		}
	}
	if poolFree != int64(mib(1000)) || containers != 0 {
		t.Fatalf("gauges: pool=%d containers=%d", poolFree, containers)
	}
}

func TestStatsJSONAndHandler(t *testing.T) {
	st := core.MustNew(core.Config{Capacity: mib(100), ContextOverhead: 1})
	o := New(Config{Algorithm: "bestfit"})
	o.BindCore(st)
	if _, err := st.Register("c1", mib(50)); err != nil {
		t.Fatal(err)
	}

	data, err := o.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var p StatsPayload
	if err := json.Unmarshal(data, &p); err != nil {
		t.Fatal(err)
	}
	if p.Algorithm != "bestfit" || len(p.Metrics) == 0 {
		t.Fatalf("stats payload: %+v", p)
	}

	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics":            MetricEvents + `{algorithm="bestfit",kind="register"} 1`,
		"/stats":              `"algorithm":"bestfit"`,
		"/trace?container=c1": `"kind":"register"`,
		"/debug/vars":         "cmdline",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("%s missing %q:\n%.2000s", path, want, body)
		}
	}
}
