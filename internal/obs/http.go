package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Handler returns the bundle's HTTP introspection surface:
//
//	/metrics      Prometheus text exposition of every registered series
//	/stats        the same JSON payload as the control socket's `stats`
//	/trace        trace ring as JSON (?container= filters)
//	/debug/vars   the process's expvar page (cmdline, memstats)
//	/debug/pprof  the standard pprof index and profiles
//
// The handler holds no state of its own; mount it on any mux or serve
// it directly.
func (o *Observability) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		o.refreshTenantGauges()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		data, err := o.StatsJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		data, err := o.TraceJSON(r.URL.Query().Get("container"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	// expvar's package-level Handler serves the default var set without
	// Publishing anything new, so mounting it repeatedly (tests spin up
	// many bundles in one process) never panics on duplicate names.
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
