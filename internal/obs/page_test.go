package obs

import (
	"encoding/json"
	"testing"
	"time"

	"convgpu/internal/wal"
)

func fillTrace(t *Tracer, n int) {
	at := time.Unix(0, 0)
	for i := 0; i < n; i++ {
		t.Record(at.Add(time.Duration(i)), "accept", "c1", 1, int64(i), 0, 0)
	}
}

func TestTracerPage(t *testing.T) {
	tr := NewTracer(64)
	fillTrace(tr, 10)

	// Page through everything in chunks of 3.
	var all []TraceEvent
	after := uint64(0)
	for {
		events, more := tr.Page("", after, 3)
		all = append(all, events...)
		if !more {
			break
		}
		after = events[len(events)-1].Seq
	}
	if len(all) != 10 {
		t.Fatalf("paged %d events, want 10", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatalf("pages out of order at %d: %v", i, all)
		}
	}

	// A cursor past the end returns nothing, no more.
	events, more := tr.Page("", all[len(all)-1].Seq, 3)
	if len(events) != 0 || more {
		t.Fatalf("past-the-end page = %v more=%v", events, more)
	}

	// Container filter composes with the cursor.
	tr.Record(time.Unix(1, 0), "accept", "c2", 2, 1, 0, 0)
	events, _ = tr.Page("c2", 0, 0)
	if len(events) != 1 || events[0].Container != "c2" {
		t.Fatalf("filtered page = %v", events)
	}
}

func TestTracerPageAfterWrap(t *testing.T) {
	tr := NewTracer(8)
	fillTrace(tr, 20) // ring holds seqs 13..20
	events, more := tr.Page("", 0, 100)
	if len(events) != 8 || more {
		t.Fatalf("wrapped ring page: %d events more=%v", len(events), more)
	}
	if events[0].Seq != 13 || events[7].Seq != 20 {
		t.Fatalf("wrapped ring page seqs %d..%d, want 13..20", events[0].Seq, events[7].Seq)
	}
	// A cursor pointing into the dropped region just returns the whole
	// retained window.
	events, _ = tr.Page("", 5, 100)
	if len(events) != 8 {
		t.Fatalf("dropped-region cursor returned %d events", len(events))
	}
}

func TestDumpPageShape(t *testing.T) {
	tr := NewTracer(64)
	fillTrace(tr, 10)
	raw, err := tr.DumpPage("", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	var d TraceDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 4 || !d.More || d.NextAfter != d.Events[3].Seq {
		t.Fatalf("first page = %+v", d)
	}
	raw, err = tr.DumpPage("", d.NextAfter, 100)
	if err != nil {
		t.Fatal(err)
	}
	var d2 TraceDump
	if err := json.Unmarshal(raw, &d2); err != nil {
		t.Fatal(err)
	}
	if len(d2.Events) != 6 || d2.More || d2.NextAfter != 0 {
		t.Fatalf("last page = %+v", d2)
	}
}

func TestRecordAdmin(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(time.Unix(0, 0), "accept", "c1", 1, 1, 0, 0)
	tr.RecordAdmin(time.Unix(0, 1), "admin_drain", "req-abc", "node 2")
	events := tr.Events("")
	if len(events) != 2 {
		t.Fatalf("%d events", len(events))
	}
	e := events[1]
	if e.Kind != "admin_drain" || e.RequestID != "req-abc" || e.Detail != "node 2" {
		t.Fatalf("admin event = %+v", e)
	}
	if e.Seq != 2 || e.CSeq != 0 {
		t.Fatalf("admin event ordering = %+v", e)
	}
}

func TestBindWAL(t *testing.T) {
	l, err := wal.Open(wal.Options{Dir: t.TempDir(), Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	o := New(Config{Algorithm: "fifo"})
	o.BindWAL(l)
	if _, err := l.Append(wal.Record{Kind: wal.KindRegister, Container: "c1", Amount: 10}); err != nil {
		t.Fatal(err)
	}

	vals := map[string]int64{}
	histCount := uint64(0)
	for _, p := range o.Registry().Snapshot() {
		switch p.Name {
		case MetricWALSegments, MetricWALSessions, MetricWALAppends, MetricWALSyncs, MetricWALLastSeq, MetricWALSizeBytes:
			vals[p.Name] = int64(p.Value)
		case MetricWALFsyncLatency:
			if p.Hist != nil {
				histCount += p.Hist.Count
			}
		}
	}
	if vals[MetricWALSegments] != 1 || vals[MetricWALSessions] != 1 || vals[MetricWALAppends] != 1 || vals[MetricWALLastSeq] != 1 {
		t.Fatalf("wal gauges = %v", vals)
	}
	if vals[MetricWALSyncs] < 1 || vals[MetricWALSizeBytes] <= 0 {
		t.Fatalf("wal gauges = %v", vals)
	}
	if histCount < 1 {
		t.Fatalf("fsync histogram count = %d, want >= 1", histCount)
	}
}
