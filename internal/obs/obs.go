package obs

import (
	"encoding/json"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"convgpu/internal/core"
	"convgpu/internal/wal"
)

// Metric names exported by an Observability bundle. DESIGN.md §9
// documents the full schema; these constants keep daemon, facade and
// tests referring to one spelling.
const (
	MetricEvents            = "convgpu_scheduler_events_total"
	MetricPoolFree          = "convgpu_pool_free_bytes"
	MetricDevicePoolFree    = "convgpu_device_pool_free_bytes"
	MetricDeviceContainers  = "convgpu_device_containers"
	MetricContainers        = "convgpu_containers"
	MetricSuspended         = "convgpu_containers_suspended"
	MetricPending           = "convgpu_pending_requests"
	MetricHandlerLatency    = "convgpu_ipc_handler_seconds"
	MetricSuspendWait       = "convgpu_suspend_wait_seconds"
	MetricRTT               = "convgpu_ipc_rtt_seconds"
	MetricReconnects        = "convgpu_ipc_reconnects_total"
	MetricLeaseExpiries     = "convgpu_lease_expiries_total"
	MetricSessionsDiscarded = "convgpu_sessions_discarded_total"
	MetricWireFrames        = "convgpu_wire_frames_total"
	MetricWireNegotiations  = "convgpu_wire_negotiations_total"
	MetricWireFrameErrors   = "convgpu_wire_frame_errors_total"
	MetricPipelineDepth     = "convgpu_ipc_pipeline_depth"
	MetricNodeState         = "convgpu_node_state"
	MetricNodeFree          = "convgpu_node_free_bytes"
	MetricNodeContainers    = "convgpu_node_containers"
	MetricNodeFailovers     = "convgpu_node_failovers_total"
	MetricFailovers         = "convgpu_failovers_total"
	MetricTicketsMigrated   = "convgpu_failover_tickets_migrated_total"
	MetricTicketsEvicted    = "convgpu_failover_tickets_evicted_total"
	MetricMigrationLatency  = "convgpu_failover_migration_seconds"
	MetricWALSegments       = "convgpu_wal_segments"
	MetricWALSizeBytes      = "convgpu_wal_size_bytes"
	MetricWALLastSeq        = "convgpu_wal_last_seq"
	MetricWALSessions       = "convgpu_wal_sessions"
	MetricWALAppends        = "convgpu_wal_appends_total"
	MetricWALSyncs          = "convgpu_wal_fsyncs_total"
	MetricWALFsyncLatency   = "convgpu_wal_fsync_seconds"
	MetricTenantContainers  = "convgpu_tenant_containers"
	MetricTenantSuspended   = "convgpu_tenant_containers_suspended"
	MetricTenantPending     = "convgpu_tenant_pending_requests"
	MetricTenantGrant       = "convgpu_tenant_grant_bytes"
	MetricTenantUsed        = "convgpu_tenant_used_bytes"
	MetricTenantQuota       = "convgpu_tenant_quota_bytes"
	MetricTenantGuarantee   = "convgpu_tenant_guarantee_bytes"
	MetricAdmitLatency      = "convgpu_admit_latency_seconds"
	MetricDeadlineMet       = "convgpu_deadline_met_total"
	MetricDeadlineMissed    = "convgpu_deadline_missed_total"
	MetricGoodput           = "convgpu_goodput_milli_per_sec"
)

// Config parameterizes an Observability bundle.
type Config struct {
	// Algorithm labels every per-algorithm series (e.g. "fifo",
	// "bestfit"). Empty is rendered as "unknown".
	Algorithm string
	// TraceCapacity sets the trace ring size (DefaultTraceCapacity when
	// 0, retention disabled when negative).
	TraceCapacity int
}

// Observability bundles the scheduler's runtime telemetry: one counter
// per core event kind (labelled by algorithm), latency histograms for
// the daemon's two sockets, suspension waits, control-channel round
// trips, and the failure-domain counters from the lease/reconnect
// machinery, plus the event trace ring. All record paths are atomic or
// leaf-mutex only — safe inside the scheduler's 0 allocs/op hot path.
type Observability struct {
	reg    *Registry
	tracer *Tracer
	algo   string

	// byKind has one counter per core.EventKind, indexed by the kind
	// itself so the observer path is a single array load + atomic add.
	byKind [core.NumEventKinds]*Counter

	// HandlerContainer and HandlerControl time the daemon's message
	// handlers (decode→respond) per socket kind.
	HandlerContainer *Histogram
	HandlerControl   *Histogram
	// SuspendWait times parked allocations from suspension to release
	// (admit, drop, or shutdown).
	SuspendWait *Histogram
	// ControlRTT times facade→daemon control calls end to end.
	ControlRTT *Histogram
	// Reconnects counts control-channel redials; LeaseExpiries counts
	// sessions reaped by the daemon's lease loop.
	Reconnects    *Counter
	LeaseExpiries *Counter
	// SessionsDiscarded counts persisted sessions the daemon threw away
	// during restart recovery (corrupt JSON, unservable device, ...).
	SessionsDiscarded *Counter
	// Failovers counts node failovers the backend executed;
	// TicketsMigrated / TicketsEvicted account for every parked ticket a
	// failover touched (migrated-or-admitted vs observably rejected), and
	// MigrationLatency times each failover end to end.
	Failovers        *Counter
	TicketsMigrated  *Counter
	TicketsEvicted   *Counter
	MigrationLatency *Histogram
	// AdmitLatency times every admitted allocation request from the
	// requester's point of view: zero for requests accepted in place,
	// the park-to-release wait for suspended ones. BindCore feeds it
	// through the scheduler's admit observer, so the histogram covers
	// immediate accepts the SuspendWait series never sees.
	AdmitLatency *Histogram
	// DeadlineMet / DeadlineMissed count per-request SLO outcomes as a
	// deadline-aware driver (the open-loop load harness, an
	// inference-serving shim) reports them via ObserveDeadline.
	DeadlineMet    *Counter
	DeadlineMissed *Counter

	// goodputMilli holds the most recent goodput reading in
	// milli-requests per second (gauges are integral; 1/1000 resolution
	// keeps sub-1/s rates visible). Set via SetGoodput.
	goodputMilli atomic.Int64

	// devMu guards suspendByDev, the per-device suspend-wait series
	// BindCore registers for each device the bound backend serves.
	devMu        sync.RWMutex
	suspendByDev map[int]*Histogram

	// tenantMu guards the per-tenant gauge machinery: tenants appear at
	// registration time, not bind time, so their series are registered
	// lazily at each export against the bound backend.
	tenantMu   sync.Mutex
	tenantSrc  core.Scheduler
	tenantSeen map[string]bool
}

// New builds an Observability bundle with every series registered.
func New(cfg Config) *Observability {
	algo := cfg.Algorithm
	if algo == "" {
		algo = "unknown"
	}
	reg := NewRegistry()
	o := &Observability{
		reg:    reg,
		tracer: NewTracer(cfg.TraceCapacity),
		algo:   algo,
	}
	for k := 0; k < core.NumEventKinds; k++ {
		o.byKind[k] = reg.NewCounter(MetricEvents,
			"Scheduler events by kind (admits=accept+resume, suspends, rejects, frees, ...).",
			Labels{"algorithm": algo, "kind": core.EventKind(k).String()})
	}
	o.HandlerContainer = reg.NewHistogram(MetricHandlerLatency,
		"Daemon handler latency from decode to response.",
		Labels{"socket": "container"})
	o.HandlerControl = reg.NewHistogram(MetricHandlerLatency,
		"Daemon handler latency from decode to response.",
		Labels{"socket": "control"})
	o.SuspendWait = reg.NewHistogram(MetricSuspendWait,
		"Time allocations spend suspended before release.", nil)
	o.ControlRTT = reg.NewHistogram(MetricRTT,
		"Control-channel call round-trip time.", Labels{"peer": "control"})
	o.Reconnects = reg.NewCounter(MetricReconnects,
		"Control-channel reconnect attempts that produced a fresh connection.", nil)
	o.LeaseExpiries = reg.NewCounter(MetricLeaseExpiries,
		"Container sessions reaped after their lease expired.", nil)
	o.SessionsDiscarded = reg.NewCounter(MetricSessionsDiscarded,
		"Persisted sessions discarded during daemon restart recovery.", nil)
	o.Failovers = reg.NewCounter(MetricFailovers,
		"Node failovers executed (containers migrated off a dead node).", nil)
	o.TicketsMigrated = reg.NewCounter(MetricTicketsMigrated,
		"Parked tickets carried through a node failover (re-parked or admitted).", nil)
	o.TicketsEvicted = reg.NewCounter(MetricTicketsEvicted,
		"Parked tickets observably rejected because no surviving node had capacity.", nil)
	o.MigrationLatency = reg.NewHistogram(MetricMigrationLatency,
		"End-to-end latency of one node failover (capture to report).", nil)
	o.AdmitLatency = reg.NewHistogram(MetricAdmitLatency,
		"Time from allocation request to admission (0 for in-place accepts).", nil)
	o.DeadlineMet = reg.NewCounter(MetricDeadlineMet,
		"Requests whose per-request deadline was met, as reported by a deadline-aware driver.", nil)
	o.DeadlineMissed = reg.NewCounter(MetricDeadlineMissed,
		"Requests whose per-request deadline was missed, as reported by a deadline-aware driver.", nil)
	reg.GaugeFunc(MetricGoodput,
		"Most recent goodput reading (deadline-met completions), in milli-requests per second.", nil,
		func() int64 { return o.goodputMilli.Load() })
	return o
}

// ObserveAdmit records one admission into the admit-latency histogram —
// the hook BindCore installs via the scheduler's SetAdmitObserver.
func (o *Observability) ObserveAdmit(a core.AdmitObservation) {
	o.AdmitLatency.Observe(a.Waited)
}

// ObserveDeadline counts one per-request SLO outcome.
func (o *Observability) ObserveDeadline(met bool) {
	if met {
		o.DeadlineMet.Inc()
	} else {
		o.DeadlineMissed.Inc()
	}
}

// SetGoodput publishes a goodput reading (deadline-met completions per
// second) on the convgpu_goodput_milli_per_sec gauge.
func (o *Observability) SetGoodput(perSec float64) {
	o.goodputMilli.Store(int64(perSec * 1000))
}

// Registry exposes the metric registry (for extra series or export).
func (o *Observability) Registry() *Registry { return o.reg }

// Tracer exposes the event trace ring.
func (o *Observability) Tracer() *Tracer { return o.tracer }

// Algorithm returns the label value this bundle was built with.
func (o *Observability) Algorithm() string { return o.algo }

// observeEvent is the core event hook: one atomic counter bump and one
// ring append per scheduler event. Runs under the core event log's
// mutex — no allocation, no locks beyond the tracer's leaf mutex.
func (o *Observability) observeEvent(e core.EventRecord) {
	k := int(e.Kind)
	if k >= 0 && k < len(o.byKind) {
		o.byKind[k].Inc()
	}
	o.tracer.Record(e.At, e.Kind.String(), string(e.Container), e.PID, int64(e.Amount), e.Device, uint64(e.Ticket))
	if e.Kind == core.EvClose {
		o.tracer.EndContainer(string(e.Container))
	}
}

// CoreObserver returns the function to install via core's SetObserver.
func (o *Observability) CoreObserver() func(core.EventRecord) {
	return o.observeEvent
}

// BindCore wires a scheduling backend into the bundle: installs the
// event observer and (re-)registers the scrape-time gauges over the
// live state, including one pool/container gauge pair per device the
// backend serves. Rebinding after a daemon restart replaces the gauges,
// so a long-lived bundle follows the current core.
func (o *Observability) BindCore(st core.Scheduler) {
	st.SetObserver(o.observeEvent)
	st.SetAdmitObserver(o.ObserveAdmit)
	al := Labels{"algorithm": o.algo}
	o.reg.GaugeFunc(MetricPoolFree,
		"Schedulable GPU memory not granted to any container (all devices).", al,
		func() int64 { return int64(st.PoolFree()) })
	o.reg.GaugeFunc(MetricContainers,
		"Registered containers.", al,
		func() int64 { return int64(len(st.Snapshot())) })
	o.reg.GaugeFunc(MetricSuspended,
		"Containers with at least one suspended allocation.", al,
		func() int64 { return int64(st.PausedContainers()) })
	o.reg.GaugeFunc(MetricPending,
		"Suspended allocation requests across all containers.", al,
		func() int64 {
			var n int64
			for _, info := range st.Snapshot() {
				n += int64(info.Pending)
			}
			return n
		})
	o.devMu.Lock()
	if o.suspendByDev == nil {
		o.suspendByDev = make(map[int]*Histogram)
	}
	for _, d := range st.Devices() {
		index := d.Index
		dl := Labels{"algorithm": o.algo, "device": strconv.Itoa(index)}
		o.reg.GaugeFunc(MetricDevicePoolFree,
			"Schedulable memory not granted to any container on one device.", dl,
			func() int64 { return int64(deviceAt(st, index).PoolFree) })
		o.reg.GaugeFunc(MetricDeviceContainers,
			"Containers placed on one device.", dl,
			func() int64 { return int64(deviceAt(st, index).Containers) })
		if _, ok := o.suspendByDev[index]; !ok {
			o.suspendByDev[index] = o.reg.NewHistogram(MetricSuspendWait,
				"Time allocations spend suspended before release, per device.", dl)
		}
	}
	o.devMu.Unlock()
	o.BindTenants(st)
}

// BindTenants points the per-tenant gauge series at a scheduling
// backend. Named tenants appear when their first container registers,
// so series registration is deferred to export time
// (refreshTenantGauges); a tenant whose containers all closed keeps its
// series and renders zeros rather than disappearing mid-scrape.
// BindCore calls this; rebinding swaps the backend under the existing
// series.
func (o *Observability) BindTenants(st core.Scheduler) {
	o.tenantMu.Lock()
	o.tenantSrc = st
	if o.tenantSeen == nil {
		o.tenantSeen = make(map[string]bool)
	}
	o.tenantMu.Unlock()
	o.refreshTenantGauges()
}

// refreshTenantGauges registers the gauge set for any tenant that
// appeared since the last export: containers, suspended containers,
// pending requests, granted and used bytes, plus the configured quota
// and guarantee. Labelled {"tenant": name}; evaluated live at scrape
// time. Export paths call this, so the cost is paid per scrape, never
// on the scheduling hot path.
func (o *Observability) refreshTenantGauges() {
	o.tenantMu.Lock()
	st := o.tenantSrc
	o.tenantMu.Unlock()
	if st == nil {
		return
	}
	for _, u := range st.Tenants() {
		o.tenantMu.Lock()
		seen := o.tenantSeen[u.Name]
		o.tenantSeen[u.Name] = true
		o.tenantMu.Unlock()
		if seen {
			continue
		}
		name := u.Name
		tl := Labels{"tenant": name}
		o.reg.GaugeFunc(MetricTenantContainers,
			"Registered containers bound to one tenant.", tl,
			func() int64 { return int64(o.tenantUsage(name).Containers) })
		o.reg.GaugeFunc(MetricTenantSuspended,
			"Tenant containers with at least one suspended allocation.", tl,
			func() int64 { return int64(o.tenantUsage(name).Suspended) })
		o.reg.GaugeFunc(MetricTenantPending,
			"Suspended allocation requests across one tenant's containers.", tl,
			func() int64 { return int64(o.tenantUsage(name).Pending) })
		o.reg.GaugeFunc(MetricTenantGrant,
			"GPU memory granted to one tenant's containers.", tl,
			func() int64 { return int64(o.tenantUsage(name).Grant) })
		o.reg.GaugeFunc(MetricTenantUsed,
			"GPU memory one tenant's containers have allocated.", tl,
			func() int64 { return int64(o.tenantUsage(name).Used) })
		o.reg.GaugeFunc(MetricTenantQuota,
			"Configured hard cap on one tenant's granted memory (0 = none).", tl,
			func() int64 { return int64(o.tenantUsage(name).Quota) })
		o.reg.GaugeFunc(MetricTenantGuarantee,
			"Configured soft reservation for one tenant (0 = none).", tl,
			func() int64 { return int64(o.tenantUsage(name).Guarantee) })
	}
}

// tenantUsage re-reads one tenant's live usage at export time. A
// tenant no longer reported (every container closed) reads as zeros.
func (o *Observability) tenantUsage(name string) core.TenantUsage {
	o.tenantMu.Lock()
	st := o.tenantSrc
	o.tenantMu.Unlock()
	if st == nil {
		return core.TenantUsage{}
	}
	for _, u := range st.Tenants() {
		if u.Name == name {
			return u
		}
	}
	return core.TenantUsage{}
}

// BindMembership registers scrape-time gauges over a cluster backend's
// node membership view: one state gauge per node and state (1 when the
// node is in that state), plus per-node free capacity, container count
// and failover total. The node set is fixed at bind time (slots persist
// across failovers — a dead node's slot holds its fresh replacement).
func (o *Observability) BindMembership(m core.Membership) {
	nodes := m.NodeStatuses()
	states := []string{"up", "suspect", "down", "draining"}
	for _, n := range nodes {
		index := n.Index
		nl := Labels{"node": strconv.Itoa(index), "name": n.Name}
		for _, s := range states {
			state := s
			o.reg.GaugeFunc(MetricNodeState,
				"1 when the node is in the labelled membership state.",
				Labels{"node": strconv.Itoa(index), "name": n.Name, "state": state},
				func() int64 {
					if st := nodeAt(m, index); st.State == state {
						return 1
					}
					return 0
				})
		}
		o.reg.GaugeFunc(MetricNodeFree,
			"Schedulable memory not granted to any container on one node.", nl,
			func() int64 { return int64(nodeAt(m, index).Free) })
		o.reg.GaugeFunc(MetricNodeContainers,
			"Containers placed on one node.", nl,
			func() int64 { return int64(nodeAt(m, index).Containers) })
		o.reg.GaugeFunc(MetricNodeFailovers,
			"Times this node slot was declared down and failed over.", nl,
			func() int64 { return int64(nodeAt(m, index).Failovers) })
	}
}

// nodeAt re-reads one node's live membership status at scrape time.
func nodeAt(m core.Membership, index int) core.NodeStatus {
	for _, n := range m.NodeStatuses() {
		if n.Index == index {
			return n
		}
	}
	return core.NodeStatus{}
}

// WireCounters is the transport's frame-counter bundle (ipc.WireStats)
// as obs consumes it — an interface so the transport package never
// imports the observability layer, mirroring ipc.LatencyObserver in the
// other direction.
type WireCounters interface {
	// Frames reports frames seen for one codec (binary or JSON
	// fallback) and direction.
	Frames(binary, out bool) uint64
	// Negotiations reports completed binary-codec handshakes.
	Negotiations() uint64
	// FrameErrors reports frames that arrived but failed to decode.
	FrameErrors() uint64
}

// BindWire registers scrape-time gauges over one transport endpoint's
// wire counters: frames by codec and direction, codec negotiations, and
// decode failures, all labelled by side (the daemon binds its server
// stats as "daemon", the facade its control client as "client") so both
// ends of the wire can share one registry. pipelineDepth, when non-nil,
// is additionally exposed as the in-flight call depth gauge (the facade
// passes its control channel's InFlight). Totals are rendered at scrape
// time, so the hot path pays only the WireStats atomics.
func (o *Observability) BindWire(side string, w WireCounters, pipelineDepth func() int64) {
	for _, c := range []struct {
		codec  string
		binary bool
	}{{"binary", true}, {"json", false}} {
		for _, d := range []struct {
			dir string
			out bool
		}{{"in", false}, {"out", true}} {
			binary, out := c.binary, d.out
			o.reg.GaugeFunc(MetricWireFrames,
				"Transport frames by codec and direction.",
				Labels{"side": side, "codec": c.codec, "direction": d.dir},
				func() int64 { return int64(w.Frames(binary, out)) })
		}
	}
	o.reg.GaugeFunc(MetricWireNegotiations,
		"Completed binary-codec handshakes.", Labels{"side": side},
		func() int64 { return int64(w.Negotiations()) })
	o.reg.GaugeFunc(MetricWireFrameErrors,
		"Frames that arrived but failed to decode.", Labels{"side": side},
		func() int64 { return int64(w.FrameErrors()) })
	if pipelineDepth != nil {
		o.reg.GaugeFunc(MetricPipelineDepth,
			"Calls currently in flight on the control channel.", Labels{"side": side},
			pipelineDepth)
	}
}

// BindWAL registers scrape-time gauges over the daemon's write-ahead
// log — segment count, on-disk bytes, last assigned sequence, live
// sessions, append and fsync totals — and installs the fsync latency
// observer feeding the convgpu_wal_fsync_seconds histogram. The log's
// Stats call is a single mutex acquisition, paid only at scrape time.
func (o *Observability) BindWAL(l *wal.Log) {
	o.reg.GaugeFunc(MetricWALSegments,
		"Write-ahead log segment files on disk (including the active one).", nil,
		func() int64 { return int64(l.Stats().Segments) })
	o.reg.GaugeFunc(MetricWALSizeBytes,
		"Total bytes across write-ahead log segments.", nil,
		func() int64 { return l.Stats().SizeBytes })
	o.reg.GaugeFunc(MetricWALLastSeq,
		"Highest sequence number the write-ahead log has assigned.", nil,
		func() int64 { return int64(l.Stats().LastSeq) })
	o.reg.GaugeFunc(MetricWALSessions,
		"Live sessions in the write-ahead log's folded view.", nil,
		func() int64 { return int64(l.Stats().Sessions) })
	o.reg.GaugeFunc(MetricWALAppends,
		"Records appended to the write-ahead log.", nil,
		func() int64 { return int64(l.Stats().Appends) })
	o.reg.GaugeFunc(MetricWALSyncs,
		"fsync calls issued by the write-ahead log.", nil,
		func() int64 { return int64(l.Stats().Syncs) })
	h := o.reg.NewHistogram(MetricWALFsyncLatency,
		"Latency of one write-ahead log fsync.", nil)
	l.SetFsyncObserver(h.Observe)
}

// ObserveSuspendWait records one suspension wait into the aggregate
// histogram and — when BindCore registered the device — its per-device
// series. Suspension release is off the zero-alloc fast path, so the
// map lookup is affordable here.
func (o *Observability) ObserveSuspendWait(device int, d time.Duration) {
	o.SuspendWait.Observe(d)
	o.devMu.RLock()
	h := o.suspendByDev[device]
	o.devMu.RUnlock()
	if h != nil {
		h.Observe(d)
	}
}

// deviceAt re-reads one device's live summary at scrape time.
func deviceAt(st core.Scheduler, index int) core.DeviceInfo {
	for _, d := range st.Devices() {
		if d.Index == index {
			return d
		}
	}
	return core.DeviceInfo{}
}

// EventCount returns the running total for one event kind.
func (o *Observability) EventCount(kind core.EventKind) uint64 {
	k := int(kind)
	if k < 0 || k >= len(o.byKind) {
		return 0
	}
	return o.byKind[k].Value()
}

// EventCounts returns every kind's running total, keyed by the kind's
// string name ("accept", "suspend", "reject", ...).
func (o *Observability) EventCounts() map[string]uint64 {
	out := make(map[string]uint64, core.NumEventKinds)
	for k := 0; k < core.NumEventKinds; k++ {
		out[core.EventKind(k).String()] = o.byKind[k].Value()
	}
	return out
}

// StatsPayload is the JSON shape answered to a `stats` introspection
// request.
type StatsPayload struct {
	Algorithm string        `json:"algorithm"`
	AtNano    int64         `json:"at_unix_nano"`
	Metrics   []MetricPoint `json:"metrics"`
}

// StatsJSON renders the full metric snapshot for the control socket.
func (o *Observability) StatsJSON() ([]byte, error) {
	o.refreshTenantGauges()
	return json.Marshal(StatsPayload{
		Algorithm: o.algo,
		AtNano:    time.Now().UnixNano(),
		Metrics:   o.reg.Snapshot(),
	})
}

// TraceJSON renders the retained event trace, optionally filtered to
// one container.
func (o *Observability) TraceJSON(container string) ([]byte, error) {
	return o.tracer.Dump(container)
}
