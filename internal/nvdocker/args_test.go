package nvdocker

import (
	"testing"

	"convgpu/internal/bytesize"
)

func TestParseArgsRun(t *testing.T) {
	cmd, err := ParseArgs([]string{
		"run", "--nvidia-memory=512MiB", "--name", "job1",
		"-e", "FOO=bar", "--env=BAZ=qux", "-v", "/data=/host/data",
		"cuda-sample:small", "arg1", "arg2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Verb != "run" || cmd.Passthrough {
		t.Fatalf("cmd = %+v", cmd)
	}
	if cmd.Options.NvidiaMemory != 512*bytesize.MiB {
		t.Errorf("nvidia-memory = %v", cmd.Options.NvidiaMemory)
	}
	if cmd.Options.Name != "job1" {
		t.Errorf("name = %q", cmd.Options.Name)
	}
	if cmd.Options.Env["FOO"] != "bar" || cmd.Options.Env["BAZ"] != "qux" {
		t.Errorf("env = %v", cmd.Options.Env)
	}
	if cmd.Options.Volumes["/data"] != "/host/data" {
		t.Errorf("volumes = %v", cmd.Options.Volumes)
	}
	if cmd.ImageName != "cuda-sample:small" {
		t.Errorf("image = %q", cmd.ImageName)
	}
	if len(cmd.Args) != 2 || cmd.Args[0] != "arg1" {
		t.Errorf("args = %v", cmd.Args)
	}
}

func TestParseArgsSeparateMemoryValue(t *testing.T) {
	cmd, err := ParseArgs([]string{"create", "--nvidia-memory", "1GiB", "--name=x", "img"})
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Options.NvidiaMemory != bytesize.GiB || cmd.Options.Name != "x" {
		t.Fatalf("cmd = %+v", cmd.Options)
	}
}

func TestParseArgsPassthrough(t *testing.T) {
	cmd, err := ParseArgs([]string{"ps", "-a"})
	if err != nil {
		t.Fatal(err)
	}
	if !cmd.Passthrough || cmd.Verb != "ps" || len(cmd.Args) != 1 {
		t.Fatalf("cmd = %+v", cmd)
	}
}

func TestParseArgsErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"run"},                              // no image
		{"run", "--nvidia-memory=oops", "i"}, // bad size
		{"run", "--nvidia-memory"},           // missing value
		{"run", "--name"},                    // missing value
		{"run", "-e", "NOEQUALS", "i"},       // bad env
		{"run", "-v", "NOEQUALS", "i"},       // bad volume
		{"run", "--bogus", "i"},              // unknown flag
		{"create", "--env"},                  // missing value
	}
	for _, args := range cases {
		if cmd, err := ParseArgs(args); err == nil {
			t.Errorf("ParseArgs(%v) = %+v, want error", args, cmd)
		}
	}
}
