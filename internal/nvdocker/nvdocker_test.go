package nvdocker

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"convgpu/internal/bytesize"
	"convgpu/internal/container"
	"convgpu/internal/core"
	"convgpu/internal/daemon"
	"convgpu/internal/gpu"
	"convgpu/internal/ipc"
	"convgpu/internal/plugin"
)

func mib(n int) bytesize.Size { return bytesize.Size(n) * bytesize.MiB }

// cudaImage is a CUDA-using image with the given labels merged in.
func cudaImage(extra map[string]string) container.Image {
	labels := map[string]string{
		VolumesNeededLabel: "nvidia_driver",
		CUDAVersionLabel:   "8.0",
	}
	for k, v := range extra {
		labels[k] = v
	}
	return container.Image{Name: "cuda-app:latest", Labels: labels}
}

// rig assembles the full control plane: core + daemon + engine + plugin
// + customized nvidia-docker, all over real sockets.
type rig struct {
	st     *core.State
	dev    *gpu.Device
	nv     *NVDocker
	plugin *plugin.Plugin
}

func newRig(t *testing.T) *rig {
	t.Helper()
	dev := gpu.New(gpu.K20m())
	st := core.MustNew(core.Config{Capacity: 5 * bytesize.GiB})
	d, err := daemon.Start(daemon.Config{BaseDir: filepath.Join(t.TempDir(), "cv"), Core: st})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	ctl, err := ipc.Dial(d.ControlSocket())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctl.Close() })
	eng, err := container.NewEngine(container.Config{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	pl := plugin.New(ctl)
	return &rig{st: st, dev: dev, nv: New(eng, ctl, pl), plugin: pl}
}

func TestResolveMemoryLimitPrecedence(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want bytesize.Size
	}{
		{
			"option wins",
			Options{NvidiaMemory: mib(256), Image: cudaImage(map[string]string{MemoryLimitLabel: "512MiB"})},
			mib(256),
		},
		{
			"label when option absent",
			Options{Image: cudaImage(map[string]string{MemoryLimitLabel: "512MiB"})},
			mib(512),
		},
		{
			"default when both absent",
			Options{Image: cudaImage(nil)},
			DefaultMemoryLimit,
		},
	}
	for _, c := range cases {
		got, err := ResolveMemoryLimit(c.opts)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: limit = %v, want %v", c.name, got, c.want)
		}
	}
	if _, err := ResolveMemoryLimit(Options{Image: cudaImage(map[string]string{MemoryLimitLabel: "garbage"})}); err == nil {
		t.Error("garbage label accepted")
	}
}

func TestRunWiresWrapperAndLimit(t *testing.T) {
	r := newRig(t)
	var viewTotal bytesize.Size
	c, err := r.nv.Run(context.Background(), Options{
		Name:         "job1",
		Image:        cudaImage(nil),
		NvidiaMemory: mib(512),
		Program: func(p *container.Proc) error {
			if !strings.Contains(p.Getenv("LD_PRELOAD"), "libgpushare.so") {
				t.Error("LD_PRELOAD not injected")
			}
			ptr, err := p.CUDA.Malloc(mib(64))
			if err != nil {
				return err
			}
			_, total, err := p.CUDA.MemGetInfo()
			if err != nil {
				return err
			}
			viewTotal = total
			return p.CUDA.Free(ptr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if viewTotal != mib(512) {
		t.Fatalf("container saw total %v, want its 512MiB limit", viewTotal)
	}
	// Exit detection delivered the close: the scheduler forgot the
	// container and returned its grant.
	if _, err := r.st.Info("job1"); err == nil {
		t.Fatal("container still registered after exit")
	}
	if r.st.PoolFree() != 5*bytesize.GiB {
		t.Fatalf("pool = %v after exit", r.st.PoolFree())
	}
	if r.plugin.ClosedCount() != 1 {
		t.Fatalf("close signals = %d", r.plugin.ClosedCount())
	}
}

func TestRunUsesLabelLimit(t *testing.T) {
	r := newRig(t)
	var total bytesize.Size
	c, err := r.nv.Run(context.Background(), Options{
		Image: cudaImage(map[string]string{MemoryLimitLabel: "256MiB"}),
		Program: func(p *container.Proc) error {
			_, tot, err := p.CUDA.MemGetInfo()
			total = tot
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Wait()
	if total != mib(256) {
		t.Fatalf("label-limited container saw %v", total)
	}
}

func TestRunDefaultLimit1GiB(t *testing.T) {
	r := newRig(t)
	var total bytesize.Size
	c, err := r.nv.Run(context.Background(), Options{
		Image: cudaImage(nil),
		Program: func(p *container.Proc) error {
			_, tot, err := p.CUDA.MemGetInfo()
			total = tot
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Wait()
	if total != bytesize.GiB {
		t.Fatalf("default-limited container saw %v, want 1GiB", total)
	}
}

func TestNonCUDAImagePassesThrough(t *testing.T) {
	r := newRig(t)
	c, err := r.nv.Run(context.Background(), Options{
		Name:  "plain",
		Image: container.Image{Name: "alpine"},
		Program: func(p *container.Proc) error {
			if p.Getenv("LD_PRELOAD") != "" {
				t.Error("plain image got LD_PRELOAD")
			}
			_, total, err := p.CUDA.MemGetInfo()
			if err != nil {
				return err
			}
			if total != 5*bytesize.GiB {
				t.Errorf("plain image saw %v, want raw device", total)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Wait()
	// Never registered with the scheduler.
	if _, err := r.st.Info("plain"); err == nil {
		t.Fatal("plain container was registered")
	}
}

func TestCUDAVersionTooNewRejected(t *testing.T) {
	r := newRig(t)
	_, err := r.nv.Run(context.Background(), Options{
		Image:   cudaImage(map[string]string{CUDAVersionLabel: "9.0"}),
		Program: func(p *container.Proc) error { return nil },
	})
	if err == nil {
		t.Fatal("CUDA 9.0 image accepted on an 8.0 host")
	}
}

func TestSchedulerRefusalPropagates(t *testing.T) {
	r := newRig(t)
	_, err := r.nv.Run(context.Background(), Options{
		Image:        cudaImage(nil),
		NvidiaMemory: 6 * bytesize.GiB, // exceeds the 5 GiB GPU
		Program:      func(p *container.Proc) error { return nil },
	})
	if err == nil {
		t.Fatal("over-capacity container accepted")
	}
	if !strings.Contains(err.Error(), "refused") {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateWithoutProgram(t *testing.T) {
	r := newRig(t)
	if _, err := r.nv.Create(context.Background(), Options{Image: cudaImage(nil)}); err == nil {
		t.Fatal("create without program succeeded")
	}
}

func TestUserEnvPreserved(t *testing.T) {
	r := newRig(t)
	c, err := r.nv.Run(context.Background(), Options{
		Image: cudaImage(nil),
		Env:   map[string]string{"LD_PRELOAD": "/opt/other.so", "FOO": "bar"},
		Program: func(p *container.Proc) error {
			pre := p.Getenv("LD_PRELOAD")
			if !strings.HasPrefix(pre, WrapperMountPoint) {
				t.Errorf("wrapper not first in LD_PRELOAD: %q", pre)
			}
			if !strings.Contains(pre, "/opt/other.so") {
				t.Errorf("user preload lost: %q", pre)
			}
			if p.Getenv("FOO") != "bar" {
				t.Error("user env lost")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Wait()
}

func TestAutoNamesAreUnique(t *testing.T) {
	r := newRig(t)
	prog := func(p *container.Proc) error { return nil }
	c1, err := r.nv.Run(context.Background(), Options{Image: cudaImage(nil), Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := r.nv.Run(context.Background(), Options{Image: cudaImage(nil), Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	if c1.ID() == c2.ID() {
		t.Fatalf("auto names collided: %s", c1.ID())
	}
	c1.Wait()
	c2.Wait()
}
