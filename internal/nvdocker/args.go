package nvdocker

import (
	"fmt"
	"strings"

	"convgpu/internal/bytesize"
)

// Command is a parsed docker-style command line. nvidia-docker "only
// captures run and create command, and the other docker commands are
// passed through to the docker" (paper §II-D); Passthrough marks those.
type Command struct {
	// Verb is the docker subcommand ("run", "create", "ps", ...).
	Verb string
	// Passthrough is true for verbs nvidia-docker does not interpret.
	Passthrough bool
	// ImageName is the positional image argument of run/create.
	ImageName string
	// Args are the remaining positional arguments after the image.
	Args []string
	// Options carries the interpreted flags (Image and Program are
	// resolved by the caller).
	Options Options
}

// ParseArgs parses a docker-like command line:
//
//	run|create [--nvidia-memory=SIZE] [--name NAME] [-e|--env K=V]
//	           [-v|--volume CTR=HOST] IMAGE [ARGS...]
//
// Any other verb is returned as a passthrough command, untouched.
func ParseArgs(args []string) (*Command, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("nvdocker: empty command")
	}
	cmd := &Command{Verb: args[0], Options: Options{
		Env:     map[string]string{},
		Volumes: map[string]string{},
	}}
	if cmd.Verb != "run" && cmd.Verb != "create" {
		cmd.Passthrough = true
		cmd.Args = args[1:]
		return cmd, nil
	}
	rest := args[1:]
	for len(rest) > 0 {
		arg := rest[0]
		rest = rest[1:]
		take := func(flag string) (string, error) {
			if len(rest) == 0 {
				return "", fmt.Errorf("nvdocker: %s requires a value", flag)
			}
			v := rest[0]
			rest = rest[1:]
			return v, nil
		}
		switch {
		case strings.HasPrefix(arg, "--nvidia-memory="):
			v := strings.TrimPrefix(arg, "--nvidia-memory=")
			size, err := bytesize.Parse(v)
			if err != nil {
				return nil, fmt.Errorf("nvdocker: --nvidia-memory: %v", err)
			}
			cmd.Options.NvidiaMemory = size
		case arg == "--nvidia-memory":
			v, err := take(arg)
			if err != nil {
				return nil, err
			}
			size, err := bytesize.Parse(v)
			if err != nil {
				return nil, fmt.Errorf("nvdocker: --nvidia-memory: %v", err)
			}
			cmd.Options.NvidiaMemory = size
		case strings.HasPrefix(arg, "--name="):
			cmd.Options.Name = strings.TrimPrefix(arg, "--name=")
		case arg == "--name":
			v, err := take(arg)
			if err != nil {
				return nil, err
			}
			cmd.Options.Name = v
		case arg == "-e" || arg == "--env":
			v, err := take(arg)
			if err != nil {
				return nil, err
			}
			k, val, ok := cut(v, "=")
			if !ok {
				return nil, fmt.Errorf("nvdocker: bad env %q, want K=V", v)
			}
			cmd.Options.Env[k] = val
		case strings.HasPrefix(arg, "--env="):
			v := strings.TrimPrefix(arg, "--env=")
			k, val, ok := cut(v, "=")
			if !ok {
				return nil, fmt.Errorf("nvdocker: bad env %q, want K=V", v)
			}
			cmd.Options.Env[k] = val
		case arg == "-v" || arg == "--volume":
			v, err := take(arg)
			if err != nil {
				return nil, err
			}
			ctr, host, ok := cut(v, "=")
			if !ok {
				return nil, fmt.Errorf("nvdocker: bad volume %q, want CTR=HOST", v)
			}
			cmd.Options.Volumes[ctr] = host
		case strings.HasPrefix(arg, "-"):
			return nil, fmt.Errorf("nvdocker: unknown option %q", arg)
		default:
			cmd.ImageName = arg
			cmd.Args = rest
			rest = nil
		}
	}
	if cmd.ImageName == "" {
		return nil, fmt.Errorf("nvdocker: %s requires an image", cmd.Verb)
	}
	return cmd, nil
}

func cut(s, sep string) (before, after string, found bool) {
	i := strings.Index(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}
