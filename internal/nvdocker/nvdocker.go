// Package nvdocker implements ConVGPU's customized nvidia-docker
// (paper §III-B): the thin wrapper over the docker command that wires a
// container to the GPU memory scheduler before it is created.
//
// For a run/create of a CUDA image it:
//
//  1. resolves the container's GPU memory limit — the --nvidia-memory
//     option, else the image's com.nvidia.memory.limit label, else the
//     1 GiB default;
//  2. registers the container and its limit with the scheduler over the
//     UNIX control socket, receiving the per-container directory that
//     holds the wrapper module and the scheduler socket;
//  3. edits the docker options: mounts that directory as a volume, sets
//     LD_PRELOAD so the wrapper module loads before the CUDA runtime,
//     and mounts the plugin's dummy volume for exit detection;
//  4. hands the edited command to the container runtime, and arms the
//     plugin watch that will deliver the close signal on exit.
//
// Non-CUDA images (no com.nvidia.volumes.needed label) pass through to
// plain docker untouched, exactly like the original nvidia-docker.
package nvdocker

import (
	"context"
	"fmt"
	"os"
	"path"
	"sync"

	"convgpu/internal/bytesize"
	"convgpu/internal/container"
	"convgpu/internal/errs"
	"convgpu/internal/plugin"
	"convgpu/internal/protocol"
	"convgpu/internal/wrapper"
)

// Image labels nvidia-docker consults (paper §II-D).
const (
	// VolumesNeededLabel marks an image as CUDA-using; without it the
	// command passes through to plain docker.
	VolumesNeededLabel = "com.nvidia.volumes.needed"
	// CUDAVersionLabel declares the CUDA version the image requires.
	CUDAVersionLabel = "com.nvidia.cuda.version"
	// MemoryLimitLabel declares the image's GPU memory limit, used when
	// --nvidia-memory is absent (paper §III-B).
	MemoryLimitLabel = "com.nvidia.memory.limit"
)

// DefaultMemoryLimit applies when neither the option nor the label is
// present (paper §III-B: "to set 1 GiB as a default").
const DefaultMemoryLimit = bytesize.GiB

// WrapperMountPoint is where the scheduler's per-container directory is
// mounted inside the container.
const WrapperMountPoint = "/convgpu"

// Caller sends messages on the scheduler's control socket.
type Caller interface {
	Call(ctx context.Context, m *protocol.Message) (*protocol.Message, error)
}

// Options describes a run/create request after command-line parsing.
type Options struct {
	// Name names the container; auto-generated when empty.
	Name string
	// Image supplies labels.
	Image container.Image
	// NvidiaMemory is the --nvidia-memory value; zero means unset.
	NvidiaMemory bytesize.Size
	// Env is the user-requested environment.
	Env map[string]string
	// Volumes are user-requested mounts (container path -> host path).
	Volumes map[string]string
	// Program is the container workload.
	Program container.Program
	// Tenant names the tenant the container registers under (empty =
	// the default tenant). The remaining fields carry the tenant's
	// inline scheduling attributes for a daemon whose configured tenant
	// table does not know the name; a configured definition wins.
	Tenant          string
	TenantWeight    int
	TenantPriority  int
	TenantQuota     bytesize.Size
	TenantGuarantee bytesize.Size
}

// NVDocker is the customized command wrapper.
type NVDocker struct {
	engine *container.Engine
	sched  Caller
	plugin *plugin.Plugin

	mu     sync.Mutex
	serial int
}

// New wires the wrapper to a container runtime, the scheduler control
// socket and the volume plugin.
func New(engine *container.Engine, sched Caller, pl *plugin.Plugin) *NVDocker {
	return &NVDocker{engine: engine, sched: sched, plugin: pl}
}

// ResolveMemoryLimit applies the paper's precedence: option, then image
// label, then the 1 GiB default.
func ResolveMemoryLimit(opts Options) (bytesize.Size, error) {
	if opts.NvidiaMemory > 0 {
		return opts.NvidiaMemory, nil
	}
	if v := opts.Image.Label(MemoryLimitLabel); v != "" {
		size, err := bytesize.Parse(v)
		if err != nil {
			return 0, fmt.Errorf("nvdocker: bad %s label: %v", MemoryLimitLabel, err)
		}
		if size <= 0 {
			return 0, fmt.Errorf("nvdocker: %s label must be positive", MemoryLimitLabel)
		}
		return size, nil
	}
	return DefaultMemoryLimit, nil
}

// usesCUDA reports whether the image declares GPU use.
func usesCUDA(im container.Image) bool {
	return im.Label(VolumesNeededLabel) != ""
}

// nextName generates a container name unique across processes: several
// nvidia-docker invocations may register with one scheduler daemon
// (Docker itself guarantees this with its random container IDs).
func (n *NVDocker) nextName() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.serial++
	return fmt.Sprintf("convgpu-%d-%d", os.Getpid(), n.serial)
}

// Create registers the container with the scheduler (when the image uses
// CUDA), prepares the spec with the wrapper wiring, and creates the
// container. The returned container is not started. The context bounds
// the registration round trip with the scheduler.
func (n *NVDocker) Create(ctx context.Context, opts Options) (*container.Container, error) {
	if opts.Program == nil {
		return nil, container.ErrNoProgram
	}
	name := opts.Name
	if name == "" {
		name = n.nextName()
	}
	spec := container.Spec{
		Name:    name,
		Image:   opts.Image,
		Env:     copyMap(opts.Env),
		Volumes: copyMap(opts.Volumes),
		Program: opts.Program,
	}
	if !usesCUDA(opts.Image) {
		// Pass through: plain docker, no GPU wiring at all.
		return n.engine.Create(spec)
	}
	if err := n.plugin.CheckCUDAVersion(opts.Image.Label(CUDAVersionLabel)); err != nil {
		return nil, err
	}
	limit, err := ResolveMemoryLimit(opts)
	if err != nil {
		return nil, err
	}
	// Register before creation (paper: "This limitation is sent to the
	// scheduler via the UNIX socket before the container is created").
	resp, err := n.sched.Call(ctx, &protocol.Message{
		Type:            protocol.TypeRegister,
		Container:       name,
		Limit:           int64(limit),
		Tenant:          opts.Tenant,
		TenantWeight:    opts.TenantWeight,
		TenantPriority:  opts.TenantPriority,
		TenantQuota:     int64(opts.TenantQuota),
		TenantGuarantee: int64(opts.TenantGuarantee),
	})
	if err != nil {
		return nil, fmt.Errorf("nvdocker: scheduler unreachable: %w (%v)", errs.ErrDaemonUnavailable, err)
	}
	if !resp.OK {
		if sentinel := protocol.ErrFromCode(resp.Code); sentinel != nil {
			return nil, fmt.Errorf("nvdocker: scheduler refused container: %w: %s", sentinel, resp.Error)
		}
		return nil, fmt.Errorf("nvdocker: scheduler refused container: %s", resp.Error)
	}
	// Wire the wrapper volume and LD_PRELOAD.
	spec.Volumes[WrapperMountPoint] = resp.SocketDir
	preload := path.Join(WrapperMountPoint, wrapper.ModuleFileName)
	if existing := spec.Env["LD_PRELOAD"]; existing != "" {
		preload = preload + ":" + existing
	}
	spec.Env["LD_PRELOAD"] = preload

	c, err := n.engine.Create(spec)
	if err != nil {
		// Unregister: the container never came to exist.
		n.sched.Call(context.Background(), &protocol.Message{Type: protocol.TypeClose, Container: name})
		return nil, err
	}
	// Dummy volume for exit detection -> close signal.
	n.plugin.Watch(c)
	return c, nil
}

// Run is Create followed by Start (the docker run path the paper's
// experiments use).
func (n *NVDocker) Run(ctx context.Context, opts Options) (*container.Container, error) {
	c, err := n.Create(ctx, opts)
	if err != nil {
		return nil, err
	}
	if err := c.Start(); err != nil {
		return nil, err
	}
	return c, nil
}

func copyMap(in map[string]string) map[string]string {
	out := make(map[string]string, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
