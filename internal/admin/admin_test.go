package admin

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"convgpu/internal/asyncop"
	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/daemon"
	"convgpu/internal/ipc"
	"convgpu/internal/leak"
	"convgpu/internal/protocol"
	"convgpu/internal/wal"
)

// startPlane boots a daemon (optionally WAL-backed) and wraps it in an
// admin handler with the given throttle shape.
func startPlane(t *testing.T, withWAL bool, rate, burst float64) *Handler {
	t.Helper()
	leak.Check(t)
	var l *wal.Log
	if withWAL {
		var err error
		l, err = wal.Open(wal.Options{Dir: filepath.Join(t.TempDir(), "wal"), Sync: wal.SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
	}
	st := core.MustNew(core.Config{Capacity: 1000 * bytesize.MiB, ContextOverhead: 1})
	d, err := daemon.Start(daemon.Config{BaseDir: filepath.Join(t.TempDir(), "cv"), Core: st, WAL: l})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	h, err := New(Config{Daemon: d, RatePerSec: rate, Burst: burst})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// registerSessions registers n sessions over the daemon's control
// socket — the admin plane is read-mostly, admissions still arrive over
// IPC.
func registerSessions(t *testing.T, h *Handler, n int) {
	t.Helper()
	cli, err := ipc.Dial(h.d.ControlSocket())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < n; i++ {
		id := "s" + string(rune('a'+i))
		resp, err := cli.Call(context.Background(), &protocol.Message{
			Type: protocol.TypeRegister, Container: id, Limit: int64(10 * bytesize.MiB),
		})
		if err != nil || !resp.OK {
			t.Fatalf("register %s: %v %+v", id, err, resp)
		}
	}
}

// get performs one request against the handler and returns the
// recorder. httptest.NewRequest pins RemoteAddr, so all requests in a
// test share one throttle bucket.
func do(h *Handler, method, target string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, target, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestRequestIDMintedAndEchoed(t *testing.T) {
	h := startPlane(t, false, 0, 0)
	rec := do(h, "GET", "/v1/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/stats = %d: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get(RequestIDHeader) == "" {
		t.Error("no request ID minted")
	}
	rec = do(h, "GET", "/v1/stats", map[string]string{RequestIDHeader: "req-mine"})
	if got := rec.Header().Get(RequestIDHeader); got != "req-mine" {
		t.Errorf("client request ID not echoed: got %q", got)
	}
}

func TestLegacyRedirectsKeepQuery(t *testing.T) {
	h := startPlane(t, false, 0, 0)
	for path, want := range map[string]string{
		"/metrics":         "/v1/metrics",
		"/stats":           "/v1/stats",
		"/trace?limit=5":   "/v1/trace?limit=5",
		"/trace?after=9&x": "/v1/trace?after=9&x",
	} {
		rec := do(h, "GET", path, nil)
		if rec.Code != http.StatusMovedPermanently {
			t.Errorf("GET %s = %d, want 301", path, rec.Code)
			continue
		}
		if got := rec.Header().Get("Location"); got != want {
			t.Errorf("GET %s redirects to %q, want %q", path, got, want)
		}
	}
	// The v1 homes answer 200 where the legacy paths redirect.
	if rec := do(h, "GET", "/v1/metrics", nil); rec.Code != http.StatusOK {
		t.Errorf("/v1/metrics = %d", rec.Code)
	}
}

func TestSessionsPaging(t *testing.T) {
	h := startPlane(t, false, 0, 0)
	registerSessions(t, h, 5)
	var got []string
	after := ""
	for {
		rec := do(h, "GET", "/v1/sessions?limit=2&after="+after, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("/v1/sessions = %d: %s", rec.Code, rec.Body)
		}
		var page daemon.SessionPage
		if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
			t.Fatal(err)
		}
		if page.Total != 5 {
			t.Fatalf("total = %d, want 5", page.Total)
		}
		for _, s := range page.Sessions {
			got = append(got, s.Container)
		}
		if !page.More {
			break
		}
		after = page.NextAfter
	}
	if len(got) != 5 {
		t.Fatalf("paged %d sessions, want 5: %v", len(got), got)
	}
	for i, id := range []string{"sa", "sb", "sc", "sd", "se"} {
		if got[i] != id {
			t.Fatalf("paged sessions = %v, want ordered sa..se", got)
		}
	}
}

func TestWALEndpointGatedOnWAL(t *testing.T) {
	h := startPlane(t, false, 0, 0)
	rec := do(h, "GET", "/v1/wal", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("/v1/wal without WAL = %d, want 404", rec.Code)
	}
	var e struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("404 body %q: %v", rec.Body, err)
	}
	if e.Error == "" || e.RequestID == "" {
		t.Errorf("404 envelope incomplete: %+v", e)
	}

	h = startPlane(t, true, 0, 0)
	registerSessions(t, h, 2)
	rec = do(h, "GET", "/v1/wal", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/wal with WAL = %d: %s", rec.Code, rec.Body)
	}
	var stats wal.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Sessions != 2 || stats.LastSeq < 2 {
		t.Errorf("wal stats = %+v, want 2 sessions", stats)
	}
}

// pollOperation polls /v1/operations/{id} until the operation leaves
// queued/running.
func pollOperation(t *testing.T, h *Handler, id string) asyncop.Operation {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		rec := do(h, "GET", "/v1/operations/"+id, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("poll %s = %d: %s", id, rec.Code, rec.Body)
		}
		var op asyncop.Operation
		if err := json.Unmarshal(rec.Body.Bytes(), &op); err != nil {
			t.Fatal(err)
		}
		if op.Status == asyncop.StatusCompleted || op.Status == asyncop.StatusFailed {
			return op
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("operation %s never finished", id)
	return asyncop.Operation{}
}

func TestCompactIsAnAsyncOperation(t *testing.T) {
	h := startPlane(t, true, 0, 0)
	registerSessions(t, h, 3)
	rec := do(h, "POST", "/v1/wal/compact", map[string]string{RequestIDHeader: "req-compact-1"})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /v1/wal/compact = %d: %s", rec.Code, rec.Body)
	}
	var op asyncop.Operation
	if err := json.Unmarshal(rec.Body.Bytes(), &op); err != nil {
		t.Fatal(err)
	}
	if op.ID == "" || op.Kind != "compact" || op.RequestID != "req-compact-1" {
		t.Fatalf("operation document = %+v", op)
	}
	if loc := rec.Header().Get("Location"); loc != "/v1/operations/"+op.ID {
		t.Errorf("Location = %q, want /v1/operations/%s", loc, op.ID)
	}
	done := pollOperation(t, h, op.ID)
	if done.Status != asyncop.StatusCompleted {
		t.Fatalf("compact finished %s: %s", done.Status, done.Error)
	}
	// The result carries the post-compaction stats.
	res, _ := json.Marshal(done.Result)
	var stats wal.Stats
	if err := json.Unmarshal(res, &stats); err != nil {
		t.Fatalf("compact result %s: %v", res, err)
	}
	if stats.Sessions != 3 {
		t.Errorf("post-compact sessions = %d, want 3", stats.Sessions)
	}
	// The admin verb landed in the event trace under the request ID.
	data, err := h.d.Obs().Tracer().DumpPage("", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) || !containsAll(string(data), "admin_compact", "req-compact-1") {
		t.Errorf("trace missing admin_compact/req-compact-1: %s", data)
	}
	// And it shows up in the listing.
	rec = do(h, "GET", "/v1/operations", nil)
	var list []asyncop.Operation
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) == 0 || list[0].ID != op.ID {
		t.Errorf("operations listing = %+v, want %s first", list, op.ID)
	}
}

func TestUnknownOperationEnvelope(t *testing.T) {
	h := startPlane(t, false, 0, 0)
	rec := do(h, "GET", "/v1/operations/op-404", map[string]string{RequestIDHeader: "req-x"})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown operation = %d, want 404", rec.Code)
	}
	var e errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID != "req-x" || e.Error == "" {
		t.Errorf("envelope = %+v", e)
	}
}

func TestDrainWithoutClusterFails(t *testing.T) {
	h := startPlane(t, false, 0, 0)
	rec := do(h, "POST", "/v1/nodes/0/drain", nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST drain = %d: %s", rec.Code, rec.Body)
	}
	var op asyncop.Operation
	if err := json.Unmarshal(rec.Body.Bytes(), &op); err != nil {
		t.Fatal(err)
	}
	done := pollOperation(t, h, op.ID)
	if done.Status != asyncop.StatusFailed {
		t.Fatalf("drain on single-node backend finished %s", done.Status)
	}
	if !containsAll(done.Error, "no node membership") {
		t.Errorf("drain error = %q", done.Error)
	}
	// A malformed node index fails before submission.
	if rec := do(h, "POST", "/v1/nodes/banana/drain", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("drain banana = %d, want 400", rec.Code)
	}
}

func TestThrottle(t *testing.T) {
	h := startPlane(t, false, 1, 2) // burst of 2, 1/s refill
	for i := 0; i < 2; i++ {
		if rec := do(h, "GET", "/v1/stats", nil); rec.Code != http.StatusOK {
			t.Fatalf("request %d = %d", i, rec.Code)
		}
	}
	rec := do(h, "GET", "/v1/stats", nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget request = %d, want 429", rec.Code)
	}
	var e errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Error == "" || e.RequestID == "" {
		t.Errorf("429 envelope = %+v", e)
	}
	// A negative rate disables throttling entirely.
	h2 := startPlane(t, false, -1, 0)
	for i := 0; i < 500; i++ {
		if rec := do(h2, "GET", "/v1/stats", nil); rec.Code != http.StatusOK {
			t.Fatalf("unthrottled request %d = %d", i, rec.Code)
		}
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}
