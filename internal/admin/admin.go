// Package admin serves the daemon's versioned HTTP admin plane.
//
// Every endpoint lives under /v1. Reads answer synchronously; mutating
// verbs (drain, revive, failover, compact, snapshot) return 202 with a
// pollable operation — POST /v1/nodes/3/drain answers with the
// operation document and a Location header pointing at
// /v1/operations/{id}, where the caller polls until the status reaches
// completed or failed. Failures travel as a {code, error, request_id}
// envelope whose code field reuses the wire protocol's machine codes,
// so errors.Is-able sentinels survive the HTTP hop exactly as they do
// the socket hop.
//
// Cross-cutting middleware: every request gets an X-Request-Id
// (honored if the client sent one, minted otherwise) that is echoed on
// the response, threaded into the operation document and recorded in
// the daemon's event trace alongside scheduler events; a per-client
// token bucket throttles abusive pollers with 429 before any handler
// runs.
//
// The unversioned paths a pre-/v1 deployment scraped (/metrics,
// /stats, /trace) answer 301 to their /v1 homes; /debug/vars and
// /debug/pprof are served in place — redirecting pprof would break the
// collecting tools.
package admin

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"convgpu/internal/clock"
	"convgpu/internal/core"
	"convgpu/internal/daemon"
	"convgpu/internal/protocol"
)

// RequestIDHeader carries the request correlation ID both ways.
const RequestIDHeader = "X-Request-Id"

// Default throttle: enough for dashboards polling every endpoint each
// second with headroom, small enough that a tight poll loop trips it.
const (
	defaultRatePerSec = 50
	defaultBurst      = 100
)

// maxTracePage bounds one /v1/trace page. HTTP has no IPC frame limit,
// so pages can be larger than the socket's; the bound keeps a single
// response from serializing the entire ring at once.
const maxTracePage = 1024

// Config configures the admin plane.
type Config struct {
	// Daemon is the running scheduler daemon the plane fronts. Required.
	Daemon *daemon.Daemon
	// Clock stamps operations, trace events and throttle refills; nil
	// uses the real clock.
	Clock clock.Clock
	// RatePerSec and Burst shape the per-client token bucket. Zero
	// picks the defaults; a negative RatePerSec disables throttling.
	RatePerSec float64
	Burst      float64
}

// Handler is the admin plane's http.Handler.
type Handler struct {
	d   *daemon.Daemon
	clk clock.Clock
	mux *http.ServeMux

	rate  float64
	burst float64

	reqSeq atomic.Uint64

	mu      sync.Mutex
	buckets map[string]*bucket
}

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// New builds the admin handler for a running daemon.
func New(cfg Config) (*Handler, error) {
	if cfg.Daemon == nil {
		return nil, errors.New("admin: Config.Daemon is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.RatePerSec == 0 {
		cfg.RatePerSec = defaultRatePerSec
	}
	if cfg.Burst <= 0 {
		cfg.Burst = defaultBurst
	}
	h := &Handler{
		d:       cfg.Daemon,
		clk:     cfg.Clock,
		rate:    cfg.RatePerSec,
		burst:   cfg.Burst,
		buckets: make(map[string]*bucket),
	}
	h.mux = h.routes()
	return h, nil
}

// ServeHTTP implements http.Handler: request-ID assignment, throttling,
// then the route table.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqID := r.Header.Get(RequestIDHeader)
	if reqID == "" {
		reqID = fmt.Sprintf("req-%d", h.reqSeq.Add(1))
		r.Header.Set(RequestIDHeader, reqID)
	}
	w.Header().Set(RequestIDHeader, reqID)
	if !h.allow(r) {
		h.writeError(w, r, http.StatusTooManyRequests, errors.New("admin: request rate over per-client limit"))
		return
	}
	h.mux.ServeHTTP(w, r)
}

// allow runs the per-client token bucket. The client key is the remote
// IP (a proxy in front should throttle upstream).
func (h *Handler) allow(r *http.Request) bool {
	if h.rate < 0 {
		return true
	}
	key, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		key = r.RemoteAddr
	}
	now := h.clk.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	b, ok := h.buckets[key]
	if !ok {
		b = &bucket{tokens: h.burst, last: now}
		h.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * h.rate
	if b.tokens > h.burst {
		b.tokens = h.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// routes builds the /v1 route table plus the legacy aliases.
func (h *Handler) routes() *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		h.d.Obs().Registry().WritePrometheus(w)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		data, err := h.d.Obs().StatsJSON()
		if err != nil {
			h.writeError(w, r, http.StatusInternalServerError, err)
			return
		}
		writeRawJSON(w, http.StatusOK, data)
	})
	mux.HandleFunc("GET /v1/trace", h.handleTrace)
	mux.HandleFunc("GET /v1/dump", func(w http.ResponseWriter, r *http.Request) {
		data, err := h.d.DumpJSON(intQuery(r, "limit", 0))
		if err != nil {
			h.writeError(w, r, http.StatusInternalServerError, err)
			return
		}
		writeRawJSON(w, http.StatusOK, data)
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		page := h.d.Sessions(r.URL.Query().Get("after"), intQuery(r, "limit", 0))
		h.writeJSON(w, r, http.StatusOK, page)
	})
	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		tenants := h.d.Tenants()
		if tenants == nil {
			tenants = []core.TenantUsage{}
		}
		h.writeJSON(w, r, http.StatusOK, tenants)
	})
	mux.HandleFunc("GET /v1/nodes", func(w http.ResponseWriter, r *http.Request) {
		nodes, err := h.d.NodeStatuses()
		if err != nil {
			h.writeError(w, r, http.StatusNotFound, err)
			return
		}
		h.writeJSON(w, r, http.StatusOK, nodes)
	})
	mux.HandleFunc("GET /v1/wal", func(w http.ResponseWriter, r *http.Request) {
		stats, ok := h.d.WALStats()
		if !ok {
			h.writeError(w, r, http.StatusNotFound, errors.New("admin: daemon runs without a write-ahead log"))
			return
		}
		h.writeJSON(w, r, http.StatusOK, stats)
	})
	mux.HandleFunc("GET /v1/operations", func(w http.ResponseWriter, r *http.Request) {
		h.writeJSON(w, r, http.StatusOK, h.d.Ops().List())
	})
	mux.HandleFunc("GET /v1/operations/{id}", func(w http.ResponseWriter, r *http.Request) {
		op, ok := h.d.Ops().Get(r.PathValue("id"))
		if !ok {
			h.writeError(w, r, http.StatusNotFound, fmt.Errorf("admin: unknown operation %q", r.PathValue("id")))
			return
		}
		h.writeJSON(w, r, http.StatusOK, op)
	})

	mux.HandleFunc("POST /v1/nodes/{node}/drain", h.nodeVerb("drain", h.d.DrainNode))
	mux.HandleFunc("POST /v1/nodes/{node}/revive", h.nodeVerb("revive", h.d.ReviveNode))
	mux.HandleFunc("POST /v1/nodes/{node}/failover", func(w http.ResponseWriter, r *http.Request) {
		node, err := strconv.Atoi(r.PathValue("node"))
		if err != nil {
			h.writeError(w, r, http.StatusBadRequest, fmt.Errorf("admin: node index %q: %v", r.PathValue("node"), err))
			return
		}
		h.submit(w, r, "failover", fmt.Sprintf("node %d", node), func() (any, error) {
			return h.d.FailNode(node)
		})
	})
	mux.HandleFunc("POST /v1/wal/compact", func(w http.ResponseWriter, r *http.Request) {
		h.submit(w, r, "compact", "wal", func() (any, error) {
			return h.d.CompactWAL()
		})
	})
	mux.HandleFunc("POST /v1/wal/snapshot", func(w http.ResponseWriter, r *http.Request) {
		h.submit(w, r, "snapshot", "wal", func() (any, error) {
			seq, err := h.d.SnapshotWAL()
			if err != nil {
				return nil, err
			}
			return map[string]uint64{"snapshot_seq": seq}, nil
		})
	})

	// Legacy unversioned paths: permanent redirects carrying the query
	// string, so existing scrape configs keep working while advertising
	// the versioned home.
	for _, p := range []string{"metrics", "stats", "trace"} {
		target := "/v1/" + p
		mux.HandleFunc("GET /"+p, func(w http.ResponseWriter, r *http.Request) {
			t := target
			if r.URL.RawQuery != "" {
				t += "?" + r.URL.RawQuery
			}
			http.Redirect(w, r, t, http.StatusMovedPermanently)
		})
	}
	// expvar's package-level Handler serves the default var set without
	// Publishing anything new, so mounting it repeatedly (tests spin up
	// many planes in one process) never panics on duplicate names.
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleTrace serves one cursor page of the event trace:
// ?after=<seq>&limit=<n>&container=<id>. The response's next_after and
// more fields drive the next request, so a long trace is retrieved
// whole instead of truncated to one frame.
func (h *Handler) handleTrace(w http.ResponseWriter, r *http.Request) {
	limit := intQuery(r, "limit", maxTracePage)
	if limit <= 0 || limit > maxTracePage {
		limit = maxTracePage
	}
	after, err := strconv.ParseUint(valueOr(r, "after", "0"), 10, 64)
	if err != nil {
		h.writeError(w, r, http.StatusBadRequest, fmt.Errorf("admin: after cursor: %v", err))
		return
	}
	data, err := h.d.Obs().Tracer().DumpPage(r.URL.Query().Get("container"), after, limit)
	if err != nil {
		h.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	writeRawJSON(w, http.StatusOK, data)
}

// nodeVerb builds the handler for a synchronous-under-the-hood node
// verb submitted as an async operation.
func (h *Handler) nodeVerb(kind string, fn func(int) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		node, err := strconv.Atoi(r.PathValue("node"))
		if err != nil {
			h.writeError(w, r, http.StatusBadRequest, fmt.Errorf("admin: node index %q: %v", r.PathValue("node"), err))
			return
		}
		h.submit(w, r, kind, fmt.Sprintf("node %d", node), func() (any, error) {
			return nil, fn(node)
		})
	}
}

// submit queues one mutating verb on the operation manager and answers
// 202 with the operation document plus its poll Location. The verb is
// recorded in the daemon's event trace under the request ID before the
// operation runs, so the trace shows the admin action ordered against
// the scheduler events it caused.
func (h *Handler) submit(w http.ResponseWriter, r *http.Request, kind, detail string, fn func() (any, error)) {
	reqID := r.Header.Get(RequestIDHeader)
	h.d.Obs().Tracer().RecordAdmin(h.clk.Now(), "admin_"+kind, reqID, detail)
	id, err := h.d.Ops().Submit(kind, reqID, detail, fn)
	if err != nil {
		h.writeError(w, r, http.StatusServiceUnavailable, err)
		return
	}
	op, _ := h.d.Ops().Get(id)
	w.Header().Set("Location", "/v1/operations/"+id)
	h.writeJSON(w, r, http.StatusAccepted, op)
}

// errorBody is the error envelope every failing endpoint answers with.
// Code reuses the wire protocol's machine codes (protocol.ErrFromCode
// reverses it client-side); RequestID lets an operator grep the trace
// and logs for the failing call.
type errorBody struct {
	Code      string `json:"code,omitempty"`
	Error     string `json:"error"`
	RequestID string `json:"request_id"`
}

func (h *Handler) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	body := errorBody{
		Code:      protocol.CodeFor(err),
		Error:     err.Error(),
		RequestID: r.Header.Get(RequestIDHeader),
	}
	data, merr := json.Marshal(body)
	if merr != nil {
		http.Error(w, err.Error(), status)
		return
	}
	writeRawJSON(w, status, data)
}

func (h *Handler) writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		h.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	writeRawJSON(w, status, data)
}

func writeRawJSON(w http.ResponseWriter, status int, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

// intQuery parses one integer query parameter, falling back on def for
// absent or malformed values (read endpoints clamp anyway).
func intQuery(r *http.Request, key string, def int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

func valueOr(r *http.Request, key, def string) string {
	if v := r.URL.Query().Get(key); v != "" {
		return v
	}
	return def
}
