package inproc

import (
	"context"
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/protocol"
)

func mib(n int) bytesize.Size { return bytesize.Size(n) * bytesize.MiB }

func newHub(t *testing.T, capMiB int) *Hub {
	t.Helper()
	st, err := core.New(core.Config{Capacity: mib(capMiB), ContextOverhead: 1})
	if err != nil {
		t.Fatal(err)
	}
	return NewHub(st)
}

func call(t *testing.T, c *Caller, m *protocol.Message) *protocol.Message {
	t.Helper()
	resp, err := c.Call(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestAllocConfirmFreeFlow(t *testing.T) {
	h := newHub(t, 1000)
	if _, err := h.Register("a", mib(400)); err != nil {
		t.Fatal(err)
	}
	c := h.Caller("a")
	resp := call(t, c, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: int64(mib(100))})
	if !resp.OK || resp.Decision != protocol.DecisionAccept {
		t.Fatalf("alloc resp = %+v", resp)
	}
	resp = call(t, c, &protocol.Message{Type: protocol.TypeConfirm, PID: 1, Size: int64(mib(100)), Addr: 0xA})
	if !resp.OK {
		t.Fatalf("confirm resp = %+v", resp)
	}
	resp = call(t, c, &protocol.Message{Type: protocol.TypeMemInfo})
	if !resp.OK || resp.Total != int64(mib(400)) {
		t.Fatalf("meminfo resp = %+v", resp)
	}
	resp = call(t, c, &protocol.Message{Type: protocol.TypeFree, PID: 1, Addr: 0xA})
	if !resp.OK || resp.Free != int64(mib(100)) {
		t.Fatalf("free resp = %+v", resp)
	}
	resp = call(t, c, &protocol.Message{Type: protocol.TypeProcExit, PID: 1})
	if !resp.OK {
		t.Fatalf("procexit resp = %+v", resp)
	}
	if err := h.Core().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectAndErrorResponses(t *testing.T) {
	h := newHub(t, 1000)
	if _, err := h.Register("a", mib(100)); err != nil {
		t.Fatal(err)
	}
	c := h.Caller("a")
	resp := call(t, c, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: int64(mib(200))})
	if resp.Decision != protocol.DecisionReject {
		t.Fatalf("over-limit resp = %+v", resp)
	}
	// Errors come back as !OK responses, not transport errors.
	resp = call(t, c, &protocol.Message{Type: protocol.TypeFree, PID: 1, Addr: 0xDEAD})
	if resp.OK {
		t.Fatalf("free of unknown addr succeeded: %+v", resp)
	}
	ghost := h.Caller("ghost")
	resp = call(t, ghost, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: 1})
	if resp.OK {
		t.Fatalf("unknown container alloc succeeded: %+v", resp)
	}
	if _, err := c.Call(context.Background(), &protocol.Message{Type: "bogus"}); err == nil {
		t.Fatal("bogus type accepted")
	}
}

func TestSuspendBlocksUntilHubClose(t *testing.T) {
	h := newHub(t, 1000)
	if _, err := h.Register("big", mib(700)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Register("small", mib(600)); err != nil {
		t.Fatal(err)
	}
	big := h.Caller("big")
	small := h.Caller("small")
	if resp := call(t, big, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: int64(mib(600))}); resp.Decision != protocol.DecisionAccept {
		t.Fatalf("big alloc: %+v", resp)
	}
	got := make(chan *protocol.Message, 1)
	go func() {
		resp, err := small.Call(context.Background(), &protocol.Message{Type: protocol.TypeAlloc, PID: 2, Size: int64(mib(500))})
		if err == nil {
			got <- resp
		} else {
			close(got)
		}
	}()
	select {
	case <-got:
		t.Fatal("suspended call returned early")
	case <-time.After(30 * time.Millisecond):
	}
	if _, err := h.Close("big"); err != nil {
		t.Fatal(err)
	}
	select {
	case resp := <-got:
		if resp == nil || resp.Decision != protocol.DecisionAccept {
			t.Fatalf("resumed resp = %+v", resp)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("suspended call never resumed")
	}
}

func TestSuspendContextCancellation(t *testing.T) {
	h := newHub(t, 1000)
	if _, err := h.Register("big", mib(700)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Register("small", mib(600)); err != nil {
		t.Fatal(err)
	}
	call(t, h.Caller("big"), &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: int64(mib(600))})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := h.Caller("small").Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 2, Size: int64(mib(500))})
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// The parked entry must be gone.
	h.mu.Lock()
	n := len(h.parked)
	h.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d parked entries leaked after cancellation", n)
	}
}

func TestAbortDispatchesUpdates(t *testing.T) {
	h := newHub(t, 1000)
	if _, err := h.Register("a", mib(900)); err != nil {
		t.Fatal(err)
	}
	c := h.Caller("a")
	// Accept a large charge, then abort it; core releases the charge.
	if resp := call(t, c, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: int64(mib(800))}); resp.Decision != protocol.DecisionAccept {
		t.Fatalf("alloc: %+v", resp)
	}
	if resp := call(t, c, &protocol.Message{Type: protocol.TypeAbort, PID: 1, Size: int64(mib(800))}); !resp.OK {
		t.Fatalf("abort: %+v", resp)
	}
	info, err := h.Core().Info("a")
	if err != nil {
		t.Fatal(err)
	}
	if info.Used != 1 { // the 1-byte overhead stays
		t.Fatalf("used after abort = %v", info.Used)
	}
}

func TestHubCloseReturnsReleased(t *testing.T) {
	h := newHub(t, 1000)
	if _, err := h.Register("a", mib(400)); err != nil {
		t.Fatal(err)
	}
	released, err := h.Close("a")
	if err != nil || released != mib(400) {
		t.Fatalf("Close = (%v,%v)", released, err)
	}
	if _, err := h.Close("zzz"); err == nil {
		t.Fatal("close of unknown container succeeded")
	}
}
