// Package inproc provides a transport-free connection between wrapper
// modules and the scheduler core: protocol messages are handed to the
// core directly, with suspension implemented as goroutine parking.
//
// The live system always talks over UNIX sockets (package ipc + daemon);
// inproc exists for the transport ablation — the paper justifies UNIX
// sockets against TCP and other IPC (§III-A), and the ablation bench
// measures how much of ConVGPU's per-call overhead is transport versus
// scheduling logic — and for tests that need the full wrapper semantics
// without filesystem sockets.
package inproc

import (
	"context"
	"fmt"
	"sync"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/protocol"
)

// Hub connects any number of containers to one scheduler core and routes
// admission updates to parked callers.
type Hub struct {
	core *core.State

	mu     sync.Mutex
	parked map[core.Ticket]chan *protocol.Message
}

// NewHub wraps a scheduler core.
func NewHub(st *core.State) *Hub {
	return &Hub{core: st, parked: make(map[core.Ticket]chan *protocol.Message)}
}

// Core returns the underlying scheduler state.
func (h *Hub) Core() *core.State { return h.core }

// Register admits a container, mirroring the daemon's control path.
func (h *Hub) Register(id core.ContainerID, limit bytesize.Size) (bytesize.Size, error) {
	return h.core.Register(id, limit)
}

// Close delivers the container-stop signal and releases its parked calls.
func (h *Hub) Close(id core.ContainerID) (bytesize.Size, error) {
	released, u, err := h.core.Close(id)
	if err != nil {
		return 0, err
	}
	h.dispatch(u)
	return released, nil
}

func (h *Hub) dispatch(u core.Update) {
	h.mu.Lock()
	type rel struct {
		ch  chan *protocol.Message
		msg *protocol.Message
	}
	var rels []rel
	for _, a := range u.Admitted {
		if ch, ok := h.parked[a.Ticket]; ok {
			delete(h.parked, a.Ticket)
			rels = append(rels, rel{ch, &protocol.Message{Type: protocol.TypeResponse, OK: true, Decision: protocol.DecisionAccept}})
		}
	}
	for _, c := range u.Cancelled {
		if ch, ok := h.parked[c.Ticket]; ok {
			delete(h.parked, c.Ticket)
			rels = append(rels, rel{ch, &protocol.Message{Type: protocol.TypeResponse, OK: false, Error: "container closed"}})
		}
	}
	h.mu.Unlock()
	for _, r := range rels {
		r.ch <- r.msg
	}
}

// Caller returns a wrapper.Caller bound to one container.
func (h *Hub) Caller(id core.ContainerID) *Caller {
	return &Caller{hub: h, id: id}
}

// Caller hands protocol messages to the core on behalf of one container.
type Caller struct {
	hub *Hub
	id  core.ContainerID
}

// Call implements the wrapper's scheduler transport without any socket:
// the same message types, the same decisions, the same blocking behavior
// on suspension.
func (c *Caller) Call(ctx context.Context, m *protocol.Message) (*protocol.Message, error) {
	h := c.hub
	st := h.core
	switch m.Type {
	case protocol.TypeAlloc:
		res, err := st.RequestAlloc(c.id, m.PID, m.SizeBytes())
		if err != nil {
			return &protocol.Message{Type: protocol.TypeResponse, OK: false, Error: err.Error()}, nil
		}
		switch res.Decision {
		case core.Accept:
			return &protocol.Message{Type: protocol.TypeResponse, OK: true, Decision: protocol.DecisionAccept}, nil
		case core.Reject:
			return &protocol.Message{Type: protocol.TypeResponse, OK: true, Decision: protocol.DecisionReject}, nil
		}
		ch := make(chan *protocol.Message, 1)
		h.mu.Lock()
		h.parked[res.Ticket] = ch
		h.mu.Unlock()
		select {
		case resp := <-ch:
			return resp, nil
		case <-ctx.Done():
			h.mu.Lock()
			delete(h.parked, res.Ticket)
			h.mu.Unlock()
			return nil, ctx.Err()
		}
	case protocol.TypeConfirm:
		if err := st.ConfirmAlloc(c.id, m.PID, m.Addr, m.SizeBytes()); err != nil {
			return &protocol.Message{Type: protocol.TypeResponse, OK: false, Error: err.Error()}, nil
		}
		return &protocol.Message{Type: protocol.TypeResponse, OK: true}, nil
	case protocol.TypeAbort:
		u, err := st.AbortAlloc(c.id, m.PID, m.SizeBytes())
		if err != nil {
			return &protocol.Message{Type: protocol.TypeResponse, OK: false, Error: err.Error()}, nil
		}
		h.dispatch(u)
		return &protocol.Message{Type: protocol.TypeResponse, OK: true}, nil
	case protocol.TypeFree:
		size, u, err := st.Free(c.id, m.PID, m.Addr)
		if err != nil {
			return &protocol.Message{Type: protocol.TypeResponse, OK: false, Error: err.Error()}, nil
		}
		h.dispatch(u)
		return &protocol.Message{Type: protocol.TypeResponse, OK: true, Free: int64(size)}, nil
	case protocol.TypeProcExit:
		size, u, err := st.ProcessExit(c.id, m.PID)
		if err != nil {
			return &protocol.Message{Type: protocol.TypeResponse, OK: false, Error: err.Error()}, nil
		}
		h.dispatch(u)
		return &protocol.Message{Type: protocol.TypeResponse, OK: true, Free: int64(size)}, nil
	case protocol.TypeAttach, protocol.TypeHeartbeat:
		// Session housekeeping: there is no connection to re-bind
		// in-process, but the wrapper's replay path must be exercisable
		// over this transport, so validate the container and acknowledge.
		if _, err := st.Info(c.id); err != nil {
			return &protocol.Message{Type: protocol.TypeResponse, OK: false, Error: err.Error()}, nil
		}
		return &protocol.Message{Type: protocol.TypeResponse, OK: true}, nil
	case protocol.TypeRestore:
		if err := st.Restore(c.id, m.PID, m.Addr, m.SizeBytes()); err != nil {
			return &protocol.Message{Type: protocol.TypeResponse, OK: false, Error: err.Error()}, nil
		}
		return &protocol.Message{Type: protocol.TypeResponse, OK: true}, nil
	case protocol.TypeMemInfo:
		free, total, err := st.MemInfo(c.id)
		if err != nil {
			return &protocol.Message{Type: protocol.TypeResponse, OK: false, Error: err.Error()}, nil
		}
		return &protocol.Message{Type: protocol.TypeResponse, OK: true, Free: int64(free), Total: int64(total)}, nil
	default:
		return nil, fmt.Errorf("inproc: unexpected message type %q", m.Type)
	}
}
