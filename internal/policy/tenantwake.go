package policy

import (
	"sort"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
)

// Names of the tenant-aware policies.
const (
	WakeFairShare  = "fairshare"
	WakeQuota      = "quota"
	WakePriority   = "priority"
	PlaceFragAware = "fragaware"
)

// weightOf reads a candidate's fair-share weight; zero or negative
// (including the default tenant's zero value) reads as 1.
func weightOf(w int) int64 {
	if w <= 0 {
		return 1
	}
	return int64(w)
}

// FairShare wakes the paused container whose tenant holds the smallest
// weighted share of granted memory — DRF-style deficit ordering across
// tenants: the tenant with the lowest grant/weight ratio is the most
// underserved and receives freed memory first. Ties (including the
// single-tenant case, where every candidate shares one ratio) fall back
// to FIFO order, so a fair-share scheduler with one tenant behaves
// exactly like the paper's FIFO.
type FairShare struct{}

// Name implements core.Algorithm.
func (FairShare) Name() string { return WakeFairShare }

// Pick implements core.Algorithm.
func (FairShare) Pick(pool bytesize.Size, cands []core.Candidate) int {
	best := -1
	for i, c := range cands {
		if best == -1 || fairLess(c, cands[best]) {
			best = i
		}
	}
	return best
}

// fairLess orders candidates by weighted tenant share ascending
// (cross-multiplied to stay in integer arithmetic), then by creation.
func fairLess(a, b core.Candidate) bool {
	sa := int64(a.TenantGrant) * weightOf(b.TenantWeight)
	sb := int64(b.TenantGrant) * weightOf(a.TenantWeight)
	if sa != sb {
		return sa < sb
	}
	return a.CreatedSeq < b.CreatedSeq
}

// Quota wakes the paused container whose tenant is furthest below its
// guarantee (largest guarantee - grant shortfall), pushing every tenant
// toward its reserved floor first; ties and tenants at or above their
// guarantees fall back to FIFO order. The hard quota ceiling itself is
// enforced by the core's admit/top-up/redistribution clamps regardless
// of the wake policy — this policy adds the SGDRC-style ordering that
// fills guarantees before surplus.
type Quota struct{}

// Name implements core.Algorithm.
func (Quota) Name() string { return WakeQuota }

// Pick implements core.Algorithm.
func (Quota) Pick(pool bytesize.Size, cands []core.Candidate) int {
	best := -1
	for i, c := range cands {
		if best == -1 || quotaLess(c, cands[best]) {
			best = i
		}
	}
	return best
}

// quotaLess orders candidates by guarantee shortfall descending, then
// by creation.
func quotaLess(a, b core.Candidate) bool {
	sa, sb := shortfall(a), shortfall(b)
	if sa != sb {
		return sa > sb
	}
	return a.CreatedSeq < b.CreatedSeq
}

func shortfall(c core.Candidate) bytesize.Size {
	if c.TenantGuarantee <= c.TenantGrant {
		return 0
	}
	return c.TenantGuarantee - c.TenantGrant
}

// Priority wakes the paused container of the highest-priority tenant
// (ties fall back to FIFO order) and implements core.Preemptor: a
// request that would suspend may instead reclaim *unused* grant
// (grant - used) from containers of strictly lower-priority tenants —
// volcano's reclaim mapped onto our suspend machinery. Victims lose
// only memory they are not occupying, so no running allocation is
// disturbed; a victim's next over-grant allocation suspends and waits
// its redistribution turn like any other.
type Priority struct{}

// Name implements core.Algorithm.
func (Priority) Name() string { return WakePriority }

// Pick implements core.Algorithm.
func (Priority) Pick(pool bytesize.Size, cands []core.Candidate) int {
	best := -1
	for i, c := range cands {
		if best == -1 || priorityLess(c, cands[best]) {
			best = i
		}
	}
	return best
}

// priorityLess orders candidates by tenant priority descending, then by
// creation.
func priorityLess(a, b core.Candidate) bool {
	if a.TenantPriority != b.TenantPriority {
		return a.TenantPriority > b.TenantPriority
	}
	return a.CreatedSeq < b.CreatedSeq
}

// Victims implements core.Preemptor: holders of strictly lower
// priority than the requester, lowest priority first (youngest first
// within a priority), taken until their unused grants cover need.
// Declines (nil) when even all eligible victims together cannot cover
// it — partial preemption would strip grants without admitting anyone.
func (Priority) Victims(need bytesize.Size, req core.Holder, holders []core.Holder) []core.ContainerID {
	var eligible []core.Holder
	for _, h := range holders {
		if h.Priority < req.Priority && h.Grant > h.Used {
			eligible = append(eligible, h)
		}
	}
	if len(eligible) == 0 {
		return nil
	}
	sort.Slice(eligible, func(i, j int) bool {
		if eligible[i].Priority != eligible[j].Priority {
			return eligible[i].Priority < eligible[j].Priority
		}
		return eligible[i].CreatedSeq > eligible[j].CreatedSeq
	})
	var out []core.ContainerID
	var sum bytesize.Size
	for _, h := range eligible {
		out = append(out, h.ID)
		sum += h.Grant - h.Used
		if sum >= need {
			return out
		}
	}
	return nil
}

// FragAware places a new container on the smallest device that can
// still hold its whole limit in free pool — the online
// fragmentation-aware packing of heterogeneous MIG-cloud schedulers:
// small containers are kept off large devices so that large pools stay
// whole for large containers. Ties prefer the fuller device (smaller
// free pool), packing tight; when no device's free pool covers the
// limit it falls back to the least-loaded device, like the other
// fit-based placement policies.
type FragAware struct{}

// Name implements multigpu.Policy.
func (FragAware) Name() string { return PlaceFragAware }

// Place implements multigpu.Policy.
func (FragAware) Place(limit bytesize.Size, devs []core.DeviceInfo) int {
	best := -1
	for _, d := range devs {
		if d.Capacity < limit || d.PoolFree < limit {
			continue
		}
		if best == -1 {
			best = d.Index
			continue
		}
		b := devs[best]
		if d.Capacity < b.Capacity || (d.Capacity == b.Capacity && d.PoolFree < b.PoolFree) {
			best = d.Index
		}
	}
	if best != -1 {
		return best
	}
	fallback := -1
	for _, d := range devs {
		if d.Capacity < limit {
			continue
		}
		if fallback == -1 || d.PoolFree > devs[fallback].PoolFree {
			fallback = d.Index
		}
	}
	return fallback
}
