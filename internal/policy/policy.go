// Package policy is the unified plugin registry for the scheduler's
// two decision surfaces: wake-order policies (which paused container
// receives freed memory — the paper's redistribution algorithms, core
// Algorithm) and placement policies (which device a new container lands
// on — multigpu.Policy). It follows the shape of volcano's scheduler
// plugins: policies are named, registered through factories, selected
// by name per daemon, and constructed with per-policy configuration.
//
// The paper's four redistribution algorithms and the four device
// placement policies are pre-registered with their historical names and
// short aliases; their factories delegate to core.NewAlgorithm and
// multigpu.NewPolicy, so resolving a legacy name through the registry
// yields the exact same concrete policy value — byte-identical
// behavior. On top of them the registry ships the tenant-aware
// policies: weighted fair share (DRF-style deficit ordering), quota /
// guarantee shortfall ordering, priority with preemption, and
// fragmentation-aware placement for heterogeneous device sizes.
package policy

import (
	"fmt"
	"strings"
	"sync"

	"convgpu/internal/core"
	"convgpu/internal/multigpu"
)

// Config carries per-policy construction parameters. Seed feeds
// randomized policies; Args is the open-ended per-policy knob table
// (volcano's plugin arguments) — unknown keys are ignored by policies
// that do not consume them.
type Config struct {
	Seed int64
	Args map[string]string
}

// WakeFactory builds a wake-order policy (a core.Algorithm).
type WakeFactory func(cfg Config) (core.Algorithm, error)

// PlaceFactory builds a device placement policy (a multigpu.Policy).
type PlaceFactory func(cfg Config) (multigpu.Policy, error)

// registry is one named-factory table with alias resolution. Names and
// aliases share a namespace and are matched case-insensitively.
type registry[F any] struct {
	mu        sync.RWMutex
	kind      string
	factories map[string]F
	canonical map[string]string // alias (and name) -> canonical name
	order     []string          // canonical names in registration order
}

func newRegistry[F any](kind string) *registry[F] {
	return &registry[F]{
		kind:      kind,
		factories: make(map[string]F),
		canonical: make(map[string]string),
	}
}

func (r *registry[F]) register(name string, f F, aliases ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := r.factories[key]; dup {
		panic(fmt.Sprintf("policy: duplicate %s policy %q", r.kind, name))
	}
	r.factories[key] = f
	r.canonical[key] = key
	r.order = append(r.order, key)
	for _, a := range aliases {
		ak := strings.ToLower(a)
		if have, dup := r.canonical[ak]; dup {
			panic(fmt.Sprintf("policy: alias %q of %s policy %q already names %q", a, r.kind, name, have))
		}
		r.canonical[ak] = key
	}
}

func (r *registry[F]) lookup(name string) (F, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	key, ok := r.canonical[strings.ToLower(name)]
	if !ok {
		var zero F
		return zero, fmt.Errorf("policy: unknown %s policy %q (have %s)",
			r.kind, name, strings.Join(r.order, "|"))
	}
	return r.factories[key], nil
}

func (r *registry[F]) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

func (r *registry[F]) resolve(name string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	key, ok := r.canonical[strings.ToLower(name)]
	return key, ok
}

var (
	wakeReg  = newRegistry[WakeFactory]("wake")
	placeReg = newRegistry[PlaceFactory]("placement")
)

// RegisterWake registers a wake-order policy factory under name and
// optional aliases. It panics on a duplicate name or alias — policy
// registration happens at init time, where a clash is a programming
// error.
func RegisterWake(name string, f WakeFactory, aliases ...string) {
	wakeReg.register(name, f, aliases...)
}

// RegisterPlace registers a placement policy factory under name and
// optional aliases.
func RegisterPlace(name string, f PlaceFactory, aliases ...string) {
	placeReg.register(name, f, aliases...)
}

// NewWake constructs the named wake-order policy.
func NewWake(name string, cfg Config) (core.Algorithm, error) {
	f, err := wakeReg.lookup(name)
	if err != nil {
		return nil, err
	}
	return f(cfg)
}

// NewPlace constructs the named placement policy.
func NewPlace(name string, cfg Config) (multigpu.Policy, error) {
	f, err := placeReg.lookup(name)
	if err != nil {
		return nil, err
	}
	return f(cfg)
}

// WakeNames lists the registered wake-order policies, registration
// order (the paper's four first).
func WakeNames() []string { return wakeReg.names() }

// PlaceNames lists the registered placement policies, registration
// order (the legacy four first).
func PlaceNames() []string { return placeReg.names() }

// ResolveWake maps a wake policy name or alias to its canonical
// registry name, reporting whether it is known. CLIs use it to accept
// legacy spellings while printing the canonical name.
func ResolveWake(name string) (string, bool) { return wakeReg.resolve(name) }

// ResolvePlace is ResolveWake for placement policies.
func ResolvePlace(name string) (string, bool) { return placeReg.resolve(name) }

func init() {
	// The paper's four wake-order algorithms, by their historical names
	// and the short aliases core.NewAlgorithm always accepted. The
	// factories delegate to core.NewAlgorithm, so the registry hands back
	// the identical concrete values.
	for _, name := range core.AlgorithmNames() {
		name := name
		f := func(cfg Config) (core.Algorithm, error) { return core.NewAlgorithm(name, cfg.Seed) }
		switch name {
		case core.AlgFIFO:
			RegisterWake(name, f, "first-in-first-out")
		case core.AlgBestFit:
			RegisterWake(name, f, "bf", "best-fit")
		case core.AlgRecentUse:
			RegisterWake(name, f, "ru", "recent-use")
		case core.AlgRandom:
			RegisterWake(name, f, "rand")
		default:
			RegisterWake(name, f)
		}
	}
	RegisterWake(WakeFairShare, func(Config) (core.Algorithm, error) { return FairShare{}, nil },
		"fair-share", "fs", "drf")
	RegisterWake(WakeQuota, func(Config) (core.Algorithm, error) { return Quota{}, nil },
		"guarantee")
	RegisterWake(WakePriority, func(Config) (core.Algorithm, error) { return Priority{}, nil },
		"prio", "preempt")

	// The four legacy placement policies, delegating to
	// multigpu.NewPolicy, plus fragmentation-aware placement.
	for _, name := range multigpu.PolicyNames() {
		name := name
		f := func(Config) (multigpu.Policy, error) { return multigpu.NewPolicy(name) }
		switch name {
		case multigpu.PolicyRoundRobin:
			RegisterPlace(name, f, "rr")
		case multigpu.PolicyLeastLoaded:
			RegisterPlace(name, f, "ll")
		case multigpu.PolicyFirstFit:
			RegisterPlace(name, f, "ff")
		case multigpu.PolicyBestFit:
			RegisterPlace(name, f, "bf")
		default:
			RegisterPlace(name, f)
		}
	}
	RegisterPlace(PlaceFragAware, func(Config) (multigpu.Policy, error) { return FragAware{}, nil },
		"frag", "fragmentation-aware")
}
