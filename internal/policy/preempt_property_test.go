package policy

import (
	"fmt"
	"math/rand"
	"testing"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
)

// TestPreemptionNeverLosesTicket is the property test for the priority
// policy's preemption path: across seeded, overcommitted two-priority
// streams, every ticket issued by a Suspend decision must be resolved
// exactly once — admitted (and then confirmable) or cancelled — and the
// scheduler invariants must hold after every single operation. At the
// end of each stream every container is closed and the pending set must
// drain to empty: a preempted grant may re-park or evict work, but it
// may never silently lose a ticket. The test also demands the streams
// actually exercise preemption (EvPreempt events observed), so a
// regression that quietly disables the Preemptor path fails loudly
// instead of vacuously passing.
func TestPreemptionNeverLosesTicket(t *testing.T) {
	const (
		capacity  = 1 * bytesize.GiB
		overhead  = 16 * bytesize.MiB
		slots     = 6
		opsPerRun = 400
	)
	tenantOf := func(slot int) core.Tenant {
		if slot%2 == 0 {
			return core.Tenant{Name: "batch", Weight: 1, Priority: 1}
		}
		return core.Tenant{Name: "interactive", Weight: 4, Priority: 9}
	}

	var totalPreempts int
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			alg, err := NewWake(WakePriority, Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			s, err := core.New(core.Config{
				Capacity: capacity, ContextOverhead: overhead, Algorithm: alg,
			})
			if err != nil {
				t.Fatal(err)
			}

			type ticketRec struct {
				id   core.ContainerID
				pid  int
				size bytesize.Size
			}
			type allocRec struct {
				pid  int
				addr uint64
				size bytesize.Size
			}
			pending := make(map[core.Ticket]ticketRec)
			live := make(map[int][]allocRec)
			registered := make(map[int]bool)
			var nextAddr uint64

			apply := func(step int, u core.Update) {
				for _, ad := range u.Admitted {
					rec, ok := pending[ad.Ticket]
					if !ok {
						t.Fatalf("step %d: admitted ticket %d was never issued or already resolved", step, ad.Ticket)
					}
					if rec.id != ad.Container {
						t.Fatalf("step %d: ticket %d issued to %s, admitted for %s", step, ad.Ticket, rec.id, ad.Container)
					}
					delete(pending, ad.Ticket)
					nextAddr++
					if err := s.ConfirmAlloc(rec.id, rec.pid, nextAddr, rec.size); err != nil {
						t.Fatalf("step %d: confirm of admitted ticket %d failed: %v", step, ad.Ticket, err)
					}
					slot := slotOfID(rec.id)
					live[slot] = append(live[slot], allocRec{pid: rec.pid, addr: nextAddr, size: rec.size})
				}
				for _, ca := range u.Cancelled {
					rec, ok := pending[ca.Ticket]
					if !ok {
						t.Fatalf("step %d: cancelled ticket %d was never issued or already resolved", step, ca.Ticket)
					}
					if rec.id != ca.Container {
						t.Fatalf("step %d: ticket %d issued to %s, cancelled for %s", step, ca.Ticket, rec.id, ca.Container)
					}
					delete(pending, ca.Ticket)
				}
			}
			closeSlot := func(step, slot int) {
				id := slotID(slot)
				_, u, err := s.Close(id)
				if err != nil {
					t.Fatalf("step %d: close %s: %v", step, id, err)
				}
				apply(step, u)
				registered[slot] = false
				delete(live, slot)
			}

			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerRun; i++ {
				slot := rng.Intn(slots)
				id := slotID(slot)
				switch w := rng.Intn(100); {
				case w < 18: // register
					if registered[slot] {
						break
					}
					limit := bytesize.Size(300+rng.Intn(500)) * bytesize.MiB
					if _, err := s.RegisterTenant(id, limit, tenantOf(slot)); err != nil {
						t.Fatalf("step %d: register %s: %v", i, id, err)
					}
					registered[slot] = true
				case w < 62: // alloc
					if !registered[slot] {
						break
					}
					pid := 1 + rng.Intn(3)
					size := bytesize.Size(32+rng.Intn(352)) * bytesize.MiB
					res, err := s.RequestAlloc(id, pid, size)
					if err != nil {
						break // over-limit or similar expected error
					}
					switch res.Decision {
					case core.Accept:
						nextAddr++
						if err := s.ConfirmAlloc(id, pid, nextAddr, size); err != nil {
							t.Fatalf("step %d: confirm accepted alloc: %v", i, err)
						}
						live[slot] = append(live[slot], allocRec{pid: pid, addr: nextAddr, size: size})
					case core.Suspend:
						if _, dup := pending[res.Ticket]; dup {
							t.Fatalf("step %d: ticket %d issued twice", i, res.Ticket)
						}
						pending[res.Ticket] = ticketRec{id: id, pid: pid, size: size}
					}
				case w < 82: // free
					la := live[slot]
					if !registered[slot] || len(la) == 0 {
						break
					}
					k := rng.Intn(len(la))
					_, u, err := s.Free(id, la[k].pid, la[k].addr)
					if err != nil {
						t.Fatalf("step %d: free: %v", i, err)
					}
					live[slot] = append(la[:k:k], la[k+1:]...)
					apply(i, u)
				case w < 92: // process exit
					if !registered[slot] {
						break
					}
					pid := 1 + rng.Intn(3)
					_, u, err := s.ProcessExit(id, pid)
					if err != nil {
						t.Fatalf("step %d: procexit: %v", i, err)
					}
					var keep []allocRec
					for _, a := range live[slot] {
						if a.pid != pid {
							keep = append(keep, a)
						}
					}
					live[slot] = keep
					apply(i, u) // the exiting pid's tickets arrive via u.Cancelled
				default: // close
					if !registered[slot] {
						break
					}
					closeSlot(i, slot)
				}
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("step %d: invariant violation: %v", i, err)
				}
			}

			// Drain: close everything and demand no ticket is left behind.
			for slot := 0; slot < slots; slot++ {
				if registered[slot] {
					closeSlot(opsPerRun, slot)
				}
			}
			if len(pending) != 0 {
				t.Fatalf("after closing all containers, %d tickets unresolved: %v", len(pending), pending)
			}
			for _, ev := range s.Events() {
				if ev.Kind == core.EvPreempt {
					totalPreempts++
				}
			}
		})
	}
	if totalPreempts == 0 {
		t.Fatalf("no EvPreempt events across any seed: the property test no longer exercises preemption")
	}
	t.Logf("observed %d preemption events across seeds", totalPreempts)
}

func slotID(slot int) core.ContainerID {
	return core.ContainerID(fmt.Sprintf("p%d", slot))
}

func slotOfID(id core.ContainerID) int {
	var n int
	fmt.Sscanf(string(id), "p%d", &n)
	return n
}
