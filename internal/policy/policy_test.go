package policy

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/multigpu"
)

func TestWakeNamesOrder(t *testing.T) {
	want := append(core.AlgorithmNames(), WakeFairShare, WakeQuota, WakePriority)
	if got := WakeNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("WakeNames() = %v, want %v", got, want)
	}
}

func TestPlaceNamesOrder(t *testing.T) {
	want := append(multigpu.PolicyNames(), PlaceFragAware)
	if got := PlaceNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("PlaceNames() = %v, want %v", got, want)
	}
}

func TestResolveWakeAliases(t *testing.T) {
	cases := map[string]string{
		"fifo": core.AlgFIFO, "first-in-first-out": core.AlgFIFO,
		"bestfit": core.AlgBestFit, "bf": core.AlgBestFit, "best-fit": core.AlgBestFit,
		"recentuse": core.AlgRecentUse, "ru": core.AlgRecentUse, "recent-use": core.AlgRecentUse,
		"random": core.AlgRandom, "rand": core.AlgRandom,
		"fairshare": WakeFairShare, "fair-share": WakeFairShare, "fs": WakeFairShare, "drf": WakeFairShare,
		"quota": WakeQuota, "guarantee": WakeQuota,
		"priority": WakePriority, "prio": WakePriority, "preempt": WakePriority,
		"FIFO": core.AlgFIFO, "FairShare": WakeFairShare, // case-insensitive
	}
	for in, want := range cases {
		got, ok := ResolveWake(in)
		if !ok || got != want {
			t.Errorf("ResolveWake(%q) = %q, %v; want %q, true", in, got, ok, want)
		}
	}
	if _, ok := ResolveWake("nope"); ok {
		t.Errorf("ResolveWake(\"nope\") resolved; want unknown")
	}
}

func TestResolvePlaceAliases(t *testing.T) {
	cases := map[string]string{
		"roundrobin": multigpu.PolicyRoundRobin, "rr": multigpu.PolicyRoundRobin,
		"leastloaded": multigpu.PolicyLeastLoaded, "ll": multigpu.PolicyLeastLoaded,
		"firstfit": multigpu.PolicyFirstFit, "ff": multigpu.PolicyFirstFit,
		"bestfit": multigpu.PolicyBestFit, "bf": multigpu.PolicyBestFit,
		"fragaware": PlaceFragAware, "frag": PlaceFragAware, "fragmentation-aware": PlaceFragAware,
	}
	for in, want := range cases {
		got, ok := ResolvePlace(in)
		if !ok || got != want {
			t.Errorf("ResolvePlace(%q) = %q, %v; want %q, true", in, got, ok, want)
		}
	}
}

func TestNewWakeUnknown(t *testing.T) {
	_, err := NewWake("no-such-policy", Config{})
	if err == nil {
		t.Fatal("NewWake of unknown name succeeded")
	}
	if !strings.Contains(err.Error(), "fifo") {
		t.Fatalf("unknown-policy error should list the registry: %v", err)
	}
}

// TestNewWakeLegacyByteIdentical drives each legacy algorithm resolved
// through the registry and its core.NewAlgorithm twin over identical
// generated candidate sets: every pick must match, pick for pick — the
// registry refactor must not perturb the paper's algorithms.
func TestNewWakeLegacyByteIdentical(t *testing.T) {
	for _, name := range core.AlgorithmNames() {
		viaRegistry, err := NewWake(name, Config{Seed: 7})
		if err != nil {
			t.Fatalf("NewWake(%q): %v", name, err)
		}
		direct, err := core.NewAlgorithm(name, 7)
		if err != nil {
			t.Fatalf("NewAlgorithm(%q): %v", name, err)
		}
		rng := rand.New(rand.NewSource(11))
		for round := 0; round < 500; round++ {
			n := 1 + rng.Intn(8)
			cands := make([]core.Candidate, n)
			for i := range cands {
				cands[i] = core.Candidate{
					ID:         core.ContainerID(string(rune('a' + i))),
					CreatedSeq: uint64(rng.Intn(40)),
					SuspendSeq: uint64(rng.Intn(40)),
					Deficit:    bytesize.Size(1+rng.Intn(1024)) * bytesize.MiB,
				}
			}
			pool := bytesize.Size(rng.Intn(2048)) * bytesize.MiB
			if got, want := viaRegistry.Pick(pool, cands), direct.Pick(pool, cands); got != want {
				t.Fatalf("%s round %d: registry pick %d, direct pick %d", name, round, got, want)
			}
		}
	}
}

// TestNewPlaceLegacyByteIdentical is the placement twin of the above.
func TestNewPlaceLegacyByteIdentical(t *testing.T) {
	for _, name := range multigpu.PolicyNames() {
		viaRegistry, err := NewPlace(name, Config{})
		if err != nil {
			t.Fatalf("NewPlace(%q): %v", name, err)
		}
		direct, err := multigpu.NewPolicy(name)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		rng := rand.New(rand.NewSource(13))
		for round := 0; round < 500; round++ {
			n := 1 + rng.Intn(6)
			devs := make([]core.DeviceInfo, n)
			for i := range devs {
				cap := bytesize.Size(1+rng.Intn(8)) * bytesize.GiB
				devs[i] = core.DeviceInfo{
					Index:      i,
					Capacity:   cap,
					PoolFree:   bytesize.Size(rng.Int63n(int64(cap) + 1)),
					Containers: rng.Intn(5),
				}
			}
			limit := bytesize.Size(1+rng.Intn(4096)) * bytesize.MiB
			if got, want := viaRegistry.Place(limit, devs), direct.Place(limit, devs); got != want {
				t.Fatalf("%s round %d: registry place %d, direct place %d", name, round, got, want)
			}
		}
	}
}

func cand(id string, seq uint64, weight, prio int, tGrant, tGuar bytesize.Size) core.Candidate {
	return core.Candidate{
		ID: core.ContainerID(id), CreatedSeq: seq, Deficit: bytesize.MiB,
		TenantWeight: weight, TenantPriority: prio,
		TenantGrant: tGrant, TenantGuarantee: tGuar,
	}
}

func TestFairSharePick(t *testing.T) {
	// b's tenant holds 100 MiB at weight 1 (share 100); a's holds
	// 300 MiB at weight 4 (share 75): a is more underserved.
	cands := []core.Candidate{
		cand("a", 1, 4, 0, 300*bytesize.MiB, 0),
		cand("b", 2, 1, 0, 100*bytesize.MiB, 0),
	}
	if got := (FairShare{}).Pick(bytesize.GiB, cands); got != 0 {
		t.Fatalf("Pick = %d, want 0 (weighted share 75 < 100)", got)
	}
	// Equal shares tie-break on creation order.
	cands = []core.Candidate{
		cand("old", 5, 2, 0, 200*bytesize.MiB, 0),
		cand("older", 3, 2, 0, 200*bytesize.MiB, 0),
	}
	if got := (FairShare{}).Pick(bytesize.GiB, cands); got != 1 {
		t.Fatalf("tie Pick = %d, want 1 (older container)", got)
	}
	// Zero weight reads as 1, so single-tenant candidates degrade to FIFO.
	cands = []core.Candidate{
		cand("c1", 9, 0, 0, 0, 0),
		cand("c0", 2, 0, 0, 0, 0),
	}
	if got := (FairShare{}).Pick(bytesize.GiB, cands); got != 1 {
		t.Fatalf("default-tenant Pick = %d, want 1 (FIFO fallback)", got)
	}
}

func TestQuotaPick(t *testing.T) {
	// b's tenant is 200 MiB below its guarantee, a's is at it.
	cands := []core.Candidate{
		cand("a", 1, 0, 0, 256*bytesize.MiB, 256*bytesize.MiB),
		cand("b", 2, 0, 0, 56*bytesize.MiB, 256*bytesize.MiB),
	}
	if got := (Quota{}).Pick(bytesize.GiB, cands); got != 1 {
		t.Fatalf("Pick = %d, want 1 (largest guarantee shortfall)", got)
	}
	// No shortfalls: FIFO order.
	cands = []core.Candidate{
		cand("young", 7, 0, 0, 0, 0),
		cand("old", 1, 0, 0, 0, 0),
	}
	if got := (Quota{}).Pick(bytesize.GiB, cands); got != 1 {
		t.Fatalf("no-shortfall Pick = %d, want 1 (FIFO fallback)", got)
	}
}

func TestPriorityPick(t *testing.T) {
	cands := []core.Candidate{
		cand("low", 1, 0, 1, 0, 0),
		cand("high", 2, 0, 9, 0, 0),
		cand("mid", 3, 0, 5, 0, 0),
	}
	if got := (Priority{}).Pick(bytesize.GiB, cands); got != 1 {
		t.Fatalf("Pick = %d, want 1 (highest priority)", got)
	}
}

func holder(id string, prio int, seq uint64, grant, used bytesize.Size) core.Holder {
	return core.Holder{ID: core.ContainerID(id), Priority: prio, CreatedSeq: seq, Grant: grant, Used: used}
}

func TestPriorityVictims(t *testing.T) {
	req := core.Holder{ID: "req", Priority: 5}
	holders := []core.Holder{
		holder("equal", 5, 1, 500*bytesize.MiB, 0),              // same priority: never a victim
		holder("above", 9, 2, 500*bytesize.MiB, 0),              // higher: never a victim
		holder("low-old", 1, 3, 100*bytesize.MiB, 0),            // lowest priority, older
		holder("low-young", 1, 4, 100*bytesize.MiB, 0),          // lowest priority, younger: first victim
		holder("mid", 3, 5, 400*bytesize.MiB, 300*bytesize.MiB), // 100 MiB unused
	}
	got := (Priority{}).Victims(250*bytesize.MiB, req, holders)
	want := []core.ContainerID{"low-young", "low-old", "mid"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Victims = %v, want %v", got, want)
	}
	// Need beyond all eligible unused grant: decline entirely.
	if got := (Priority{}).Victims(500*bytesize.MiB, req, holders); got != nil {
		t.Fatalf("uncoverable need returned victims %v, want nil", got)
	}
	// No lower-priority holders: decline.
	if got := (Priority{}).Victims(bytesize.MiB, req, holders[:2]); got != nil {
		t.Fatalf("no eligible holders returned %v, want nil", got)
	}
}

func dev(i int, cap, free bytesize.Size) core.DeviceInfo {
	return core.DeviceInfo{Index: i, Capacity: cap, PoolFree: free}
}

func TestFragAwarePlace(t *testing.T) {
	devs := []core.DeviceInfo{
		dev(0, 8*bytesize.GiB, 6*bytesize.GiB),
		dev(1, 2*bytesize.GiB, bytesize.GiB),
		dev(2, 4*bytesize.GiB, 3*bytesize.GiB),
	}
	// A small container goes to the smallest device that fits it,
	// keeping the 8 GiB pool whole.
	if got := (FragAware{}).Place(512*bytesize.MiB, devs); got != 1 {
		t.Fatalf("small Place = %d, want 1 (smallest fitting device)", got)
	}
	// A large one must take the big device.
	if got := (FragAware{}).Place(5*bytesize.GiB, devs); got != 0 {
		t.Fatalf("large Place = %d, want 0", got)
	}
	// Capacity ties prefer the fuller device (smaller free pool).
	tied := []core.DeviceInfo{
		dev(0, 4*bytesize.GiB, 3*bytesize.GiB),
		dev(1, 4*bytesize.GiB, 2*bytesize.GiB),
	}
	if got := (FragAware{}).Place(bytesize.GiB, tied); got != 1 {
		t.Fatalf("tie Place = %d, want 1 (fuller device)", got)
	}
	// Nothing's free pool covers the limit: least-loaded fallback among
	// devices whose capacity could ever hold it.
	full := []core.DeviceInfo{
		dev(0, 2*bytesize.GiB, 256*bytesize.MiB),
		dev(1, 4*bytesize.GiB, 512*bytesize.MiB),
	}
	if got := (FragAware{}).Place(bytesize.GiB, full); got != 1 {
		t.Fatalf("fallback Place = %d, want 1 (largest free pool)", got)
	}
	// No device large enough at all: -1.
	if got := (FragAware{}).Place(16*bytesize.GiB, devs); got != -1 {
		t.Fatalf("oversized Place = %d, want -1", got)
	}
}
