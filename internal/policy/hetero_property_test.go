package policy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/multigpu"
)

// migProfiles are MIG-style instance capacities (the A100's 1g.5gb
// through 7g.40gb slices): the heterogeneous topologies fragaware was
// written for, where devices on one node differ by up to 8x.
var migProfiles = []bytesize.Size{
	5 * bytesize.GiB, 10 * bytesize.GiB, 20 * bytesize.GiB, 40 * bytesize.GiB,
}

// genHeteroDevices builds a random mixed-capacity device summary:
// dense indices, each capacity drawn from the MIG profile set, pools
// within capacity.
func genHeteroDevices(rng *rand.Rand) []core.DeviceInfo {
	n := rng.Intn(8)
	out := make([]core.DeviceInfo, n)
	for i := range out {
		c := migProfiles[rng.Intn(len(migProfiles))]
		out[i] = core.DeviceInfo{
			Index:      i,
			Capacity:   c,
			PoolFree:   bytesize.Size(rng.Int63n(int64(c) + 1)),
			Containers: rng.Intn(10),
		}
	}
	return out
}

// TestFragAwareHeteroProperty: on mixed-capacity topologies, when any
// device's free pool covers the limit, fragaware picks a covering
// device of minimal capacity, breaking capacity ties toward the fuller
// device (smaller free pool). This is the property that keeps small
// containers off large MIG instances so large pools stay whole.
func TestFragAwareHeteroProperty(t *testing.T) {
	f := func(seed int64, limitGiB uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		devs := genHeteroDevices(rng)
		limit := bytesize.Size(int(limitGiB)%40+1) * bytesize.GiB
		i := (FragAware{}).Place(limit, devs)
		anyCovers := false
		var minCap, minPool bytesize.Size
		for _, d := range devs {
			if d.Capacity < limit || d.PoolFree < limit {
				continue
			}
			if !anyCovers || d.Capacity < minCap || (d.Capacity == minCap && d.PoolFree < minPool) {
				minCap, minPool = d.Capacity, d.PoolFree
			}
			anyCovers = true
		}
		if anyCovers {
			return i >= 0 && devs[i].Capacity == minCap && devs[i].PoolFree == minPool
		}
		// Fallback: least-loaded among devices whose capacity covers.
		if i == -1 {
			for _, d := range devs {
				if d.Capacity >= limit {
					return false
				}
			}
			return true
		}
		for _, d := range devs {
			if d.Capacity >= limit && d.PoolFree > devs[i].PoolFree {
				return false
			}
		}
		return devs[i].Capacity >= limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestFragAwareSparesLargestProperty: a small request never lands on a
// strictly larger device while a smaller covering device exists —
// stated directly, rather than via the argmin above, because it is the
// invariant heterogeneous operators actually rely on.
func TestFragAwareSparesLargestProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		devs := genHeteroDevices(rng)
		limit := bytesize.Size(rng.Intn(4)+1) * bytesize.GiB
		i := (FragAware{}).Place(limit, devs)
		if i < 0 {
			return true
		}
		for _, d := range devs {
			if d.PoolFree >= limit && d.Capacity >= limit && d.Capacity < devs[i].Capacity {
				// A smaller covering device existed; the pick must not
				// be a fallback (which only happens when nothing covers).
				return devs[i].PoolFree < limit
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// heteroOpStream drives a random register/alloc/free/close stream
// against a multigpu.State built with MIG-style unequal Capacities,
// checking per-device invariants throughout and a whole-pool drain at
// the end — the heterogeneous mirror of multigpu's op-stream property.
func heteroOpStream(t *testing.T, name string, seed int64) {
	t.Helper()
	pol, err := NewPlace(name, Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	caps := []bytesize.Size{20 * bytesize.GiB, 5 * bytesize.GiB, 5 * bytesize.GiB, 10 * bytesize.GiB}
	s, err := multigpu.New(multigpu.Config{
		Devices:         len(caps),
		Capacities:      caps,
		Policy:          pol,
		ContextOverhead: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	ids := []core.ContainerID{"a", "b", "c", "d", "e", "f"}
	type allocation struct {
		id   core.ContainerID
		addr uint64
		size bytesize.Size
	}
	var live []allocation
	registered := make(map[core.ContainerID]bool)
	nextAddr := uint64(0x1000)
	check := func(op string) {
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("place %s seed %d after %s: %v", name, seed, op, err)
		}
	}
	for i := 0; i < 250; i++ {
		id := ids[rng.Intn(len(ids))]
		switch rng.Intn(10) {
		case 0, 1, 2:
			if registered[id] {
				break
			}
			// Limits up to 16 GiB: only the 20 GiB device can host the
			// big ones, so placement must respect unequal capacities.
			limit := bytesize.Size(rng.Intn(16)+1) * bytesize.GiB
			if _, err := s.Register(id, limit); err != nil {
				t.Fatalf("place %s seed %d register %s: %v", name, seed, id, err)
			}
			registered[id] = true
			check("register")
		case 3, 4, 5, 6:
			if !registered[id] {
				break
			}
			size := bytesize.Size(rng.Intn(512)+1) * bytesize.MiB
			res, err := s.RequestAlloc(id, 1, size)
			if err != nil {
				t.Fatalf("place %s seed %d alloc %s: %v", name, seed, id, err)
			}
			check("alloc")
			if res.Decision == core.Accept {
				nextAddr += 0x1000
				if err := s.ConfirmAlloc(id, 1, nextAddr, size); err != nil {
					t.Fatalf("place %s seed %d confirm %s: %v", name, seed, id, err)
				}
				live = append(live, allocation{id, nextAddr, size})
				check("confirm")
			}
		case 7, 8:
			if len(live) == 0 {
				break
			}
			j := rng.Intn(len(live))
			a := live[j]
			if !registered[a.id] {
				live = append(live[:j], live[j+1:]...)
				break
			}
			if _, _, err := s.Free(a.id, 1, a.addr); err != nil {
				t.Fatalf("place %s seed %d free %s: %v", name, seed, a.id, err)
			}
			live = append(live[:j], live[j+1:]...)
			check("free")
		case 9:
			if !registered[id] {
				break
			}
			if _, _, err := s.Close(id); err != nil {
				t.Fatalf("place %s seed %d close %s: %v", name, seed, id, err)
			}
			delete(registered, id)
			kept := live[:0]
			for _, a := range live {
				if a.id != id {
					kept = append(kept, a)
				}
			}
			live = kept
			check("close")
		}
	}
	for id := range registered {
		if _, _, err := s.Close(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range s.Devices() {
		if d.PoolFree != d.Capacity {
			t.Fatalf("place %s seed %d: device %d pool %v != capacity %v after drain",
				name, seed, d.Index, d.PoolFree, d.Capacity)
		}
	}
	// The configured asymmetry must survive the whole stream.
	for i, d := range s.Devices() {
		if d.Capacity != caps[i] {
			t.Fatalf("place %s: device %d capacity %v, want %v", name, i, d.Capacity, caps[i])
		}
	}
}

// TestPlaceHeteroOpStreams: every registered placement policy keeps
// per-device invariants over random op streams on an unequal-capacity
// (MIG-style) topology.
func TestPlaceHeteroOpStreams(t *testing.T) {
	for _, name := range PlaceNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 15; seed++ {
				heteroOpStream(t, name, seed)
			}
		})
	}
}
