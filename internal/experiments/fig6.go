package experiments

import (
	"fmt"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/container"
	"convgpu/internal/cuda"
	"convgpu/internal/metrics"
	"convgpu/internal/workload"
)

func init() {
	register("fig6", "overall runtime of the TensorFlow-MNIST workload with/without ConVGPU", Fig6)
}

// Fig6 measures the end-to-end runtime of the MNIST-CNN training
// workload with and without ConVGPU. The paper measured 404.93 s with
// versus ~402 s without — a 0.7 % overhead — because a training run
// spends nearly all its time in kernels and host<->device copies, which
// ConVGPU does not intercept; only the handful of allocation calls pay
// the wrapper round trip. The workload here is time-compressed (fewer,
// shorter steps), which *inflates* the relative overhead; the shape
// claim is that it stays in the low single digits even so.
func Fig6(opt Options) (*Report, error) {
	cfg := workload.MNISTConfig{
		Steps:        400,
		StepTime:     5 * time.Millisecond,
		BatchBytes:   4 * bytesize.MiB,
		ParamAllocs:  16,
		ParamBytes:   16 * bytesize.MiB,
		ReallocEvery: 50,
	}
	if opt.Quick {
		cfg.Steps = 60
		cfg.StepTime = 2 * time.Millisecond
	}

	r, err := newRig(true, 2*bytesize.GiB)
	if err != nil {
		return nil, err
	}
	defer r.Close()

	reps := 4
	if opt.Quick {
		reps = 2
	}
	once := func(api cuda.API) (time.Duration, error) {
		prog := workload.MNISTProgram(cfg)
		proc := &container.Proc{PID: 0, CUDA: api}
		start := time.Now()
		if err := prog(proc); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	// Interleave the two arms and keep each arm's minimum: the workload
	// is dominated by calibrated spin-waits, so CPU frequency drift
	// between back-to-back multi-second runs would otherwise swamp the
	// few milliseconds of middleware cost being measured.
	var with, without time.Duration
	for i := 0; i < reps; i++ {
		order := []cuda.API{r.Wrapped, r.Raw}
		if i%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		for _, api := range order {
			d, err := once(api)
			if err != nil {
				return nil, fmt.Errorf("fig6: %w", err)
			}
			if api == cuda.API(r.Wrapped) {
				if with == 0 || d < with {
					with = d
				}
			} else if without == 0 || d < without {
				without = d
			}
		}
	}
	overhead := float64(with-without) / float64(without) * 100

	bar := &metrics.Bar{Title: "Fig. 6: overall runtime of the MNIST program (s)", Unit: "s"}
	bar.Add("with ConVGPU", with.Seconds())
	bar.Add("without", without.Seconds())
	table := &metrics.Table{
		Title: "Fig. 6: MNIST end-to-end runtime",
		Cols:  []string{"seconds", "overhead %", "intercepted calls"},
	}
	table.AddRow("with ConVGPU", []float64{with.Seconds(), overhead, float64(cfg.InterceptedCalls())})
	table.AddRow("without", []float64{without.Seconds(), 0, 0})

	return &Report{
		ID:     "fig6",
		Title:  "TensorFlow MNIST end-to-end runtime (paper Fig. 6)",
		Tables: []*metrics.Table{table},
		Bars:   []*metrics.Bar{bar},
		Notes: []string{
			// "Negligible" is the paper's claim; a measured overhead
			// within noise of zero (possibly slightly negative) confirms
			// it as strongly as a small positive number does.
			shapeNote("end-to-end overhead negligible (|overhead| < 5% even time-compressed; paper: 0.7%)",
				overhead < 5 && overhead > -5),
			fmt.Sprintf("measured %+.2f%% over %d intercepted calls; the paper's 20000-step run "+
				"amortizes the same per-call cost to 0.7%%", overhead, cfg.InterceptedCalls()),
		},
	}, nil
}
