// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV), plus the ablations DESIGN.md calls out and
// the future-work extensions. Each experiment returns a Report that the
// convgpu-bench command renders; bench_test.go wraps the same
// implementations as testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"convgpu/internal/metrics"
)

// Report is one experiment's rendered outcome.
type Report struct {
	// ID is the experiment id ("fig4", "table3", ...).
	ID string
	// Title describes the paper artifact being regenerated.
	Title string
	// Tables holds numeric grids (paper tables and figure data series).
	Tables []*metrics.Table
	// Bars holds bar-chart views (the paper's Fig. 4/5/6 are bars).
	Bars []*metrics.Bar
	// Notes records shape checks against the paper's claims and any
	// caveats (absolute numbers are not expected to match a 2017
	// testbed).
	Notes []string
}

// Render writes the report as text.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "=== %s: %s ===\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, b := range r.Bars {
		if err := b.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, t := range r.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes every table of the report as CSV blocks.
func (r *Report) CSV(w io.Writer) error {
	for _, t := range r.Tables {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
		if err := t.CSV(w); err != nil {
			return err
		}
	}
	return nil
}

// Options tunes experiment cost.
type Options struct {
	// Quick shrinks repetitions and sweep sizes for CI-speed runs.
	Quick bool
}

// runner is an experiment entry point.
type runner func(Options) (*Report, error)

var registry = map[string]runner{}
var descriptions = map[string]string{}

func register(id, desc string, fn runner) {
	registry[id] = fn
	descriptions[id] = desc
}

// IDs lists the experiment ids in stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description of an experiment id.
func Describe(id string) string { return descriptions[id] }

// Run executes one experiment by id ("all" runs every one and returns a
// merged report).
func Run(id string, opt Options) (*Report, error) {
	if strings.EqualFold(id, "all") {
		merged := &Report{ID: "all", Title: "every experiment"}
		for _, eid := range IDs() {
			r, err := registry[eid](opt)
			if err != nil {
				return nil, fmt.Errorf("experiment %s: %w", eid, err)
			}
			merged.Tables = append(merged.Tables, r.Tables...)
			merged.Bars = append(merged.Bars, r.Bars...)
			for _, n := range r.Notes {
				merged.Notes = append(merged.Notes, eid+": "+n)
			}
		}
		return merged, nil
	}
	fn, ok := registry[strings.ToLower(id)]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return fn(opt)
}
