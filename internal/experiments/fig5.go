package experiments

import (
	"context"
	"fmt"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/container"
	"convgpu/internal/core"
	"convgpu/internal/daemon"
	"convgpu/internal/gpu"
	"convgpu/internal/ipc"
	"convgpu/internal/metrics"
	"convgpu/internal/nvdocker"
	"convgpu/internal/plugin"
	"os"
)

func init() {
	register("fig5", "container creation time with/without ConVGPU", Fig5)
}

// Fig5 measures container creation time with and without ConVGPU. The
// paper measured ~0.41 s for plain creation and ~15 % (+61.8 ms) more
// with ConVGPU, the extra being the scheduler's registration work
// (admission, directory, socket, wrapper copy) done before `docker
// create`. The simulated runtime's base creation cost is calibrated to
// the paper's plain-Docker figure; the ConVGPU delta is real measured
// work (UNIX socket round trip + filesystem setup), so the *absolute*
// delta reflects this machine, not the 2017 testbed.
func Fig5(opt Options) (*Report, error) {
	reps := 10
	baseCreate := 410 * time.Millisecond
	if opt.Quick {
		reps = 10
		baseCreate = 5 * time.Millisecond
	}

	dev := gpu.New(gpu.K20m())
	eng, err := container.NewEngine(container.Config{Device: dev, CreateLatency: baseCreate})
	if err != nil {
		return nil, err
	}
	st, err := core.New(core.Config{Capacity: 5 * bytesize.GiB})
	if err != nil {
		return nil, err
	}
	baseDir, err := os.MkdirTemp("", "convgpu-fig5")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(baseDir)
	d, err := daemon.Start(daemon.Config{BaseDir: baseDir, Core: st})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	ctl, err := ipc.Dial(d.ControlSocket())
	if err != nil {
		return nil, err
	}
	defer ctl.Close()
	nv := nvdocker.New(eng, ctl, plugin.New(ctl))

	prog := func(p *container.Proc) error { return nil }
	cudaImage := container.Image{Name: "cuda-app", Labels: map[string]string{
		nvdocker.VolumesNeededLabel: "nvidia_driver",
	}}

	var withTotal, withoutTotal time.Duration
	for i := 0; i < reps; i++ {
		start := time.Now()
		c, err := nv.Create(context.Background(), nvdocker.Options{
			Name:         fmt.Sprintf("fig5-with-%d", i),
			Image:        cudaImage,
			NvidiaMemory: 512 * bytesize.MiB,
			Program:      prog,
		})
		if err != nil {
			return nil, err
		}
		withTotal += time.Since(start)
		// Release the registration so grants do not accumulate.
		c.Start()
		c.Wait()
	}
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := eng.Create(container.Spec{
			Name:    fmt.Sprintf("fig5-without-%d", i),
			Program: prog,
		}); err != nil {
			return nil, err
		}
		withoutTotal += time.Since(start)
	}
	with := withTotal / time.Duration(reps)
	without := withoutTotal / time.Duration(reps)

	bar := &metrics.Bar{Title: "Fig. 5: container creation time (s)", Unit: "s"}
	bar.Add("with ConVGPU", with.Seconds())
	bar.Add("without", without.Seconds())
	table := &metrics.Table{
		Title: "Fig. 5: container creation time",
		Cols:  []string{"seconds", "overhead vs without"},
	}
	table.AddRow("with ConVGPU", []float64{with.Seconds(), float64(with-without) / float64(without) * 100})
	table.AddRow("without", []float64{without.Seconds(), 0})

	return &Report{
		ID:     "fig5",
		Title:  "container creation time (paper Fig. 5)",
		Tables: []*metrics.Table{table},
		Bars:   []*metrics.Bar{bar},
		Notes: []string{
			shapeNote("creation with ConVGPU slower than without", with > without),
			fmt.Sprintf("measured overhead %+.1f%% (paper: +15%%, +61.8 ms on its testbed; "+
				"our scheduler-side setup is cheaper on a modern machine)",
				float64(with-without)/float64(without)*100),
		},
	}, nil
}
