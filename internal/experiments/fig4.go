package experiments

import (
	"fmt"
	"sort"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/cuda"
	"convgpu/internal/metrics"
)

func init() {
	register("fig4", "response time of hooked CUDA API calls with/without ConVGPU", Fig4)
}

// Fig4 measures the response time of the six CUDA APIs the paper's
// Figure 4 reports, with and without ConVGPU, on the latency-calibrated
// device. The paper's headline shapes:
//
//   - allocation calls with ConVGPU pay a clear middleware premium —
//     the UNIX-socket round trips dominate the difference. The paper
//     measured ~2x on its C implementation; this implementation's
//     pooled codec and coalesced socket writes cut the two round trips
//     to a fraction of the device latency, so the asserted shape is
//     "well above the without time", not the original factor;
//   - the first cudaMallocPitch is ~2x the later ones (it fetches
//     device properties for the pitch size);
//   - cudaMallocManaged dwarfs everything (~40x) because it maps host
//     and device memory;
//   - cudaFree adds almost nothing (the report is fire-and-forget);
//   - cudaMemGetInfo is *faster* with ConVGPU (no device call at all).
func Fig4(opt Options) (*Report, error) {
	reps := 200
	if opt.Quick {
		reps = 30
	}
	r, err := newRig(true, 4*bytesize.GiB)
	if err != nil {
		return nil, err
	}
	defer r.Close()

	const allocSize = bytesize.MiB

	type row struct {
		name          string
		with, without time.Duration
	}
	var rows []row

	// measure reports the median per-call latency: robust against the
	// scheduling outliers that a mean would absorb (the paper likewise
	// averages 10 repetitions of a steady measurement).
	measure := func(n int, f func() error) (time.Duration, error) {
		samples := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			start := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			samples = append(samples, time.Since(start))
		}
		return median(samples), nil
	}

	// cudaMalloc + cudaFree (measured separately, same loop).
	var mallocWith, mallocWithout, freeWith, freeWithout time.Duration
	{
		var err error
		var ptr cuda.DevPtr
		mallocWith, err = measure(reps, func() error {
			p, err := r.Wrapped.Malloc(allocSize)
			ptr = p
			if err != nil {
				return err
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("fig4 cudaMalloc with: %w", err)
		}
		_ = ptr
		// Free everything we allocated, measuring the frees.
		snapshot := r.dev.AllocCount()
		_ = snapshot
		freeWith, err = measureFreeAll(r, reps, allocSize, true)
		if err != nil {
			return nil, err
		}
		mallocWithout, err = measure(reps, func() error {
			_, err := r.Raw.Malloc(allocSize)
			return err
		})
		if err != nil {
			return nil, err
		}
		freeWithout, err = measureFreeAll(r, reps, allocSize, false)
		if err != nil {
			return nil, err
		}
	}
	rows = append(rows,
		row{"cudaMalloc", mallocWith, mallocWithout},
		row{"cudaFree", freeWith, freeWithout},
	)

	// cudaMallocManaged (128 MiB granularity: free each immediately to
	// avoid exhausting the limit).
	managedWith, err := measure(reps, func() error {
		p, err := r.Wrapped.MallocManaged(allocSize)
		if err != nil {
			return err
		}
		return deferredFree(r.Wrapped.Free, p)
	})
	if err != nil {
		return nil, err
	}
	managedWithout, err := measure(reps, func() error {
		p, err := r.Raw.MallocManaged(allocSize)
		if err != nil {
			return err
		}
		return deferredFree(r.Raw.Free, p)
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, row{"cudaMallocManaged", managedWith, managedWithout})

	// cudaMallocPitch, first call per process: a fresh wrapper must
	// fetch device properties.
	firstReps := reps / 4
	if firstReps < 5 {
		firstReps = 5
	}
	firstSamples := make([]time.Duration, 0, firstReps)
	for i := 0; i < firstReps; i++ {
		mod := r.FreshWrapped(20000 + i)
		start := time.Now()
		p, _, err := mod.MallocPitch(1024, 64)
		if err != nil {
			return nil, fmt.Errorf("fig4 first pitch: %w", err)
		}
		firstSamples = append(firstSamples, time.Since(start))
		if err := mod.Free(p); err != nil {
			return nil, err
		}
		mod.Flush()
		if err := mod.UnregisterFatBinary(); err != nil {
			return nil, err
		}
	}
	pitchFirstWith := median(firstSamples)

	// cudaMallocPitch, subsequent calls (properties cached).
	pitchWith, err := measure(reps, func() error {
		p, _, err := r.Wrapped.MallocPitch(1024, 64)
		if err != nil {
			return err
		}
		return deferredFree(r.Wrapped.Free, p)
	})
	if err != nil {
		return nil, err
	}
	pitchWithout, err := measure(reps, func() error {
		p, _, err := r.Raw.MallocPitch(1024, 64)
		if err != nil {
			return err
		}
		return deferredFree(r.Raw.Free, p)
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows,
		row{"cudaMallocPitch (first)", pitchFirstWith, pitchWithout},
		row{"cudaMallocPitch", pitchWith, pitchWithout},
	)

	// cudaMemGetInfo: with ConVGPU the device is never touched.
	memInfoWith, err := measure(reps, func() error {
		_, _, err := r.Wrapped.MemGetInfo()
		return err
	})
	if err != nil {
		return nil, err
	}
	memInfoWithout, err := measure(reps, func() error {
		_, _, err := r.Raw.MemGetInfo()
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, row{"cudaMemGetInfo", memInfoWith, memInfoWithout})

	// Assemble the report.
	table := &metrics.Table{
		Title: "Fig. 4: response time of the API call from the container (ms)",
		Cols:  []string{"with ConVGPU", "without", "ratio"},
	}
	bar := &metrics.Bar{Title: "Fig. 4 (bars): with ConVGPU, ms", Unit: "ms"}
	for _, rw := range rows {
		ratio := 0.0
		if rw.without > 0 {
			ratio = float64(rw.with) / float64(rw.without)
		}
		table.AddRow(rw.name, []float64{ms(rw.with), ms(rw.without), ratio})
		bar.Add(rw.name, ms(rw.with))
	}
	rep := &Report{
		ID:     "fig4",
		Title:  "response time of hooked CUDA APIs (paper Fig. 4)",
		Tables: []*metrics.Table{table},
		Bars:   []*metrics.Bar{bar},
	}
	rep.Notes = append(rep.Notes,
		shapeNote("allocation pays the scheduler round trips", mallocWith > mallocWithout*11/10),
		shapeNote("first cudaMallocPitch above later calls", pitchFirstWith > pitchWith),
		shapeNote("cudaMallocManaged >> other allocations", managedWith > 5*mallocWith),
		shapeNote("cudaFree overhead small (async report)", freeWith < mallocWith),
		shapeNote("cudaMemGetInfo faster with ConVGPU", memInfoWith < memInfoWithout),
	)
	return rep, nil
}

// measureFreeAll frees `n` allocations of `size` made beforehand,
// timing each free on the wrapped or raw path. It allocates first
// without timing.
func measureFreeAll(r *rig, n int, size bytesize.Size, wrapped bool) (time.Duration, error) {
	ptrs := make([]cuda.DevPtr, 0, n)
	samples := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		var p cuda.DevPtr
		var err error
		if wrapped {
			p, err = r.Wrapped.Malloc(size)
		} else {
			p, err = r.Raw.Malloc(size)
		}
		if err != nil {
			return 0, err
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		start := time.Now()
		var err error
		if wrapped {
			err = r.Wrapped.Free(p)
		} else {
			err = r.Raw.Free(p)
		}
		if err != nil {
			return 0, err
		}
		samples = append(samples, time.Since(start))
	}
	if wrapped {
		r.Wrapped.Flush()
	}
	return median(samples), nil
}

func deferredFree(free func(cuda.DevPtr) error, p cuda.DevPtr) error {
	return free(p)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// median returns the middle sample (of a copy; the input is unsorted).
func median(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func shapeNote(claim string, holds bool) string {
	if holds {
		return "shape holds: " + claim
	}
	return "SHAPE MISMATCH: " + claim
}
