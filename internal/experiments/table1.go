package experiments

import "fmt"

func init() {
	register("table1", "comparison of the Remote-API GPU virtualization frameworks (background)", Table1)
}

// table1Rows is the paper's Table I verbatim: the prior Remote-API
// frameworks and how each one ships captured CUDA calls out of the
// virtualized environment. ConVGPU's contrast (§III-C): it does not
// re-implement the API at all — LD_PRELOAD interposition covers only the
// memory-management symbols and leaves every other call native, which is
// why it works with internal/undocumented CUDA entry points and even
// with other custom CUDA stacks such as rCUDA.
var table1Rows = []struct {
	framework     string
	networkMethod string
	approach      string
}{
	{"GViM [4]", "XenStore", "full Runtime-API copy, VM frontend/backend split"},
	{"gVirtuS [5]", "TCP/IP (VMSocket)", "full Runtime-API copy over a pluggable communicator"},
	{"vCUDA [6]", "VMRPC", "full Runtime-API copy with RPC batching"},
	{"rCUDA [7]", "Sockets API", "full Runtime+Driver copy to a remote GPU server"},
	{"ConVGPU (this system)", "UNIX domain socket (host-local)", "interposition of 8 memory APIs only; everything else native"},
}

// Table1 reproduces the paper's Table I as a reference artifact. It is
// background (no measurement), kept so every numbered table in the paper
// has a regenerating command; the last row adds ConVGPU itself for the
// contrast the section draws.
func Table1(opt Options) (*Report, error) {
	rep := &Report{
		ID:    "table1",
		Title: "comparing the Remote-API frameworks (paper Table I, background)",
	}
	for _, r := range table1Rows {
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("%-22s network: %-28s %s", r.framework, r.networkMethod, r.approach))
	}
	rep.Notes = append(rep.Notes,
		"shape holds: reference table; the measured counterpart of the transport column is the ablation-transport experiment")
	return rep, nil
}
