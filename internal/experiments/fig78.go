package experiments

import (
	"fmt"
	"time"

	"convgpu/internal/core"
	"convgpu/internal/metrics"
	"convgpu/internal/sim"
)

func init() {
	register("fig7", "finished time of N containers under the four algorithms (Table IV)", Fig7)
	register("fig8", "average suspended time of N containers under the four algorithms (Table V)", Fig8)
}

func paperSweep(opt Options) sim.Sweep {
	s := sim.DefaultSweep()
	if opt.Quick {
		s.Counts = []int{4, 12, 20, 28, 38}
		s.Reps = 2
	}
	return s
}

// Fig7 regenerates the paper's Figure 7 / Table IV: the finished time
// of all containers for 4–38 containers under FIFO, Best-Fit,
// Recent-Use and Random, six repetitions each, replayed in virtual time
// against the real scheduler core.
func Fig7(opt Options) (*Report, error) {
	res, err := paperSweep(opt).Run()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig7",
		Title:  "finished time of given containers, four algorithms (paper Fig. 7 / Table IV)",
		Tables: []*metrics.Table{res.FinishTable(), res.UtilizationTable()},
	}
	rep.Notes = appendFig7Notes(rep.Notes, res)
	return rep, nil
}

// Fig8 regenerates the paper's Figure 8 / Table V: the average
// suspended time per container across the same sweep.
func Fig8(opt Options) (*Report, error) {
	res, err := paperSweep(opt).Run()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig8",
		Title:  "average suspended time of given containers, four algorithms (paper Fig. 8 / Table V)",
		Tables: []*metrics.Table{res.SuspendTable()},
	}
	rep.Notes = appendFig8Notes(rep.Notes, res)
	return rep, nil
}

func appendFig7Notes(notes []string, res *sim.SweepResult) []string {
	counts := res.Sweep.Counts
	lo, hi := counts[0], counts[len(counts)-1]
	// Claim 1: finish time grows roughly linearly as the count doubles.
	growth := seconds(res.Cells[core.AlgFIFO][hi].FinishTime) / seconds(res.Cells[core.AlgFIFO][lo].FinishTime)
	notes = append(notes, shapeNote(
		fmt.Sprintf("finished time grows with container count (x%.1f from %d to %d containers)", growth, lo, hi),
		growth > 2))
	// Claim 2: Best-Fit is fastest on average beyond 18 containers.
	var bfWins, cells int
	var bfGap time.Duration
	for _, n := range counts {
		if n < 18 {
			continue
		}
		cells++
		bf := res.Cells[core.AlgBestFit][n].FinishTime
		best := true
		var worstOther time.Duration
		for _, alg := range res.Sweep.Algorithms {
			if alg == core.AlgBestFit {
				continue
			}
			ft := res.Cells[alg][n].FinishTime
			if ft < bf {
				best = false
			}
			if ft > worstOther {
				worstOther = ft
			}
		}
		if best {
			bfWins++
		}
		bfGap += worstOther - bf
	}
	if cells > 0 {
		notes = append(notes, shapeNote(
			fmt.Sprintf("Best-Fit fastest in %d/%d heavy-load cells (mean gap to worst %.0fs; paper: ~30s)",
				bfWins, cells, seconds(bfGap/time.Duration(cells))),
			bfWins*2 >= cells))
	}
	// Claim 3: algorithms are close below 16 containers.
	spread := algorithmSpread(res, func(n int) bool { return n <= 16 })
	notes = append(notes, shapeNote(
		fmt.Sprintf("algorithms within %.0f%% of each other below 16 containers", spread*100),
		spread < 0.25))
	// The paper's causal claim: Best-Fit wins by maximizing GPU memory
	// throughput. Utilization is measured directly here.
	bfUtil := res.Cells[core.AlgBestFit][hi].Utilization
	maxOtherUtil := 0.0
	for _, alg := range res.Sweep.Algorithms {
		if alg == core.AlgBestFit {
			continue
		}
		if u := res.Cells[alg][hi].Utilization; u > maxOtherUtil {
			maxOtherUtil = u
		}
	}
	notes = append(notes, shapeNote(
		fmt.Sprintf("Best-Fit's measured memory utilization tops the others at %d containers (%.1f%% vs <=%.1f%%) — the paper's \"maximizes the GPU memory throughput\" explanation, quantified",
			hi, bfUtil*100, maxOtherUtil*100),
		bfUtil >= maxOtherUtil))
	// Stalls must not occur.
	stalls := 0
	for _, m := range res.Cells {
		for _, c := range m {
			stalls += c.Stalls
		}
	}
	notes = append(notes, shapeNote(fmt.Sprintf("no run wedged (%d stalls)", stalls), stalls == 0))
	return notes
}

func appendFig8Notes(notes []string, res *sim.SweepResult) []string {
	counts := res.Sweep.Counts
	lo, hi := counts[0], counts[len(counts)-1]
	growth := seconds(res.Cells[core.AlgFIFO][hi].AvgSuspended) / seconds(res.Cells[core.AlgFIFO][lo].AvgSuspended)
	notes = append(notes, shapeNote(
		fmt.Sprintf("average suspension grows with load (x%.1f from %d to %d containers)", growth, lo, hi),
		growth > 2))
	notes = append(notes,
		"paper claims Best-Fit suffers the highest average suspended time beyond 26 containers "+
			"(starvation of unmatched sizes); that ordering depends on grant semantics the paper "+
			"underdetermines — see EXPERIMENTS.md and the ablation-grants experiment")
	return notes
}

// algorithmSpread computes the worst relative finish-time spread across
// algorithms over the selected counts.
func algorithmSpread(res *sim.SweepResult, sel func(int) bool) float64 {
	worst := 0.0
	for _, n := range res.Sweep.Counts {
		if !sel(n) {
			continue
		}
		var min, max time.Duration
		first := true
		for _, alg := range res.Sweep.Algorithms {
			ft := res.Cells[alg][n].FinishTime
			if first || ft < min {
				min = ft
			}
			if first || ft > max {
				max = ft
			}
			first = false
		}
		if min > 0 {
			if s := float64(max-min) / float64(min); s > worst {
				worst = s
			}
		}
	}
	return worst
}

func seconds(d time.Duration) float64 { return d.Seconds() }
