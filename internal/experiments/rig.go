package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/cuda"
	"convgpu/internal/daemon"
	"convgpu/internal/gpu"
	"convgpu/internal/ipc"
	"convgpu/internal/protocol"
	"convgpu/internal/wrapper"
)

// rig is the measured path of the single-container experiments: a
// latency-calibrated device, the scheduler daemon over a real UNIX
// socket, and a wrapper module for one registered container — plus the
// matching un-wrapped runtime for the "without ConVGPU" baseline.
type rig struct {
	dev     *gpu.Device
	state   *core.State
	daemon  *daemon.Daemon
	ctl     *ipc.Client
	wrapCli *ipc.Client
	baseDir string

	// Raw is the un-intercepted runtime (the "without" baseline).
	Raw *cuda.Runtime
	// Wrapped is the intercepted runtime of the registered container.
	Wrapped *wrapper.Module
	// WrappedPID is the wrapped process's pid.
	WrappedPID int
	// ContainerID of the registered container.
	ContainerID core.ContainerID
}

// newRig builds the measured path. withLatency selects the Figure 4
// device calibration; limit is the container's GPU memory limit.
func newRig(withLatency bool, limit bytesize.Size) (*rig, error) {
	r := &rig{WrappedPID: 4242, ContainerID: "measured"}
	props := gpu.K20m()
	var opts []gpu.Option
	if withLatency {
		opts = append(opts, gpu.WithLatency(gpu.PaperLatency(), nil))
	}
	r.dev = gpu.New(props, opts...)
	var err error
	r.state, err = core.New(core.Config{Capacity: props.TotalGlobalMem})
	if err != nil {
		return nil, err
	}
	r.baseDir, err = os.MkdirTemp("", "convgpu-exp")
	if err != nil {
		return nil, err
	}
	r.daemon, err = daemon.Start(daemon.Config{BaseDir: r.baseDir, Core: r.state})
	if err != nil {
		r.Close()
		return nil, err
	}
	r.ctl, err = ipc.Dial(r.daemon.ControlSocket())
	if err != nil {
		r.Close()
		return nil, err
	}
	resp, err := r.ctl.Call(context.Background(), &protocol.Message{
		Type: protocol.TypeRegister, Container: string(r.ContainerID), Limit: int64(limit),
	})
	if err != nil {
		r.Close()
		return nil, err
	}
	if !resp.OK {
		r.Close()
		return nil, fmt.Errorf("experiments: register: %s", resp.Error)
	}
	r.wrapCli, err = ipc.Dial(filepath.Join(resp.SocketDir, wrapper.SocketFileName))
	if err != nil {
		r.Close()
		return nil, err
	}
	r.Raw = cuda.NewRuntime(r.dev, 1111)
	r.Wrapped = wrapper.New(cuda.NewRuntime(r.dev, r.WrappedPID), r.wrapCli, r.WrappedPID)
	return r, nil
}

// FreshWrapped returns a new wrapper module for the same container and
// device (a "new process"): its first cudaMallocPitch pays the
// cudaGetDeviceProperties cost, which Figure 4 measures separately.
func (r *rig) FreshWrapped(pid int) *wrapper.Module {
	return wrapper.New(cuda.NewRuntime(r.dev, pid), r.wrapCli, pid)
}

// Close releases the rig.
func (r *rig) Close() {
	if r.wrapCli != nil {
		r.wrapCli.Close()
	}
	if r.ctl != nil {
		r.ctl.Close()
	}
	if r.daemon != nil {
		r.daemon.Close()
	}
	if r.baseDir != "" {
		os.RemoveAll(r.baseDir)
	}
}
