package experiments

import (
	"fmt"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
	"convgpu/internal/cluster"
	"convgpu/internal/core"
	"convgpu/internal/metrics"
	"convgpu/internal/multigpu"
	"convgpu/internal/sim"
	"convgpu/internal/workload"
)

func init() {
	register("multigpu", "extension: placement policies over 1-4 GPUs (paper §V future work)", MultiGPU)
	register("cluster", "extension: Swarm-style strategies over 1-4 nodes (paper §V future work)", ClusterExp)
}

// MultiGPU evaluates the multi-GPU extension: the same contended trace
// scheduled over 1, 2 and 4 GPUs under each placement policy, with
// Best-Fit redistribution on every device.
func MultiGPU(opt Options) (*Report, error) {
	n, reps := 32, 4
	if opt.Quick {
		n, reps = 24, 2
	}
	deviceCounts := []int{1, 2, 4}
	t := &metrics.Table{
		Title:     "X1: finished time by placement policy and GPU count (s)",
		ColHeader: "GPUs",
	}
	for _, d := range deviceCounts {
		t.Cols = append(t.Cols, fmt.Sprintf("%d", d))
	}
	type key struct {
		policy  string
		devices int
	}
	finish := map[key]float64{}
	for _, polName := range multigpu.PolicyNames() {
		for _, devices := range deviceCounts {
			var total float64
			for rep := 0; rep < reps; rep++ {
				trace := workload.GenerateTrace(n, workload.DefaultSpacing, 31000+int64(rep))
				clk := clock.NewManual()
				pol, err := multigpu.NewPolicy(polName)
				if err != nil {
					return nil, err
				}
				sched, err := multigpu.New(multigpu.Config{
					Devices:           devices,
					CapacityPerDevice: 5 * bytesize.GiB,
					Algorithm:         core.AlgBestFit,
					Policy:            pol,
					Clock:             clk,
				})
				if err != nil {
					return nil, err
				}
				res, err := sim.RunWith(trace, sched, clk, sim.Config{})
				if err != nil {
					return nil, err
				}
				total += res.FinishTime.Seconds() / float64(reps)
			}
			finish[key{polName, devices}] = total
		}
	}
	for _, polName := range multigpu.PolicyNames() {
		var cells []float64
		for _, d := range deviceCounts {
			cells = append(cells, finish[key{polName, d}])
		}
		t.AddRow(polName, cells)
	}
	speedup := finish[key{multigpu.PolicyLeastLoaded, 1}] / finish[key{multigpu.PolicyLeastLoaded, 4}]
	return &Report{
		ID:     "multigpu",
		Title:  "multi-GPU extension (paper §V future work)",
		Tables: []*metrics.Table{t},
		Notes: []string{
			// The makespan is floored by the arrival span (a container
			// every 5 s), so the attainable speedup is bounded; any
			// consistent gain demonstrates the extension works.
			shapeNote(fmt.Sprintf("adding GPUs shortens the batch (x%.2f from 1 to 4 GPUs, least-loaded)", speedup),
				speedup > 1.02),
		},
	}, nil
}

// ClusterExp evaluates the cluster extension: the trace scheduled over
// 1, 2 and 4 single-GPU nodes under each Swarm-style strategy.
func ClusterExp(opt Options) (*Report, error) {
	n, reps := 32, 4
	if opt.Quick {
		n, reps = 24, 2
	}
	nodeCounts := []int{1, 2, 4}
	t := &metrics.Table{
		Title:     "X2: finished time by cluster strategy and node count (s)",
		ColHeader: "nodes (1 GPU each)",
	}
	for _, d := range nodeCounts {
		t.Cols = append(t.Cols, fmt.Sprintf("%d", d))
	}
	type key struct {
		strategy string
		nodes    int
	}
	finish := map[key]float64{}
	for _, stratName := range cluster.StrategyNames() {
		for _, nodes := range nodeCounts {
			var total float64
			for rep := 0; rep < reps; rep++ {
				trace := workload.GenerateTrace(n, workload.DefaultSpacing, 47000+int64(rep))
				clk := clock.NewManual()
				strat, err := cluster.NewStrategy(stratName, int64(rep))
				if err != nil {
					return nil, err
				}
				cl, err := cluster.New(cluster.Config{
					Nodes:          nodes,
					GPUsPerNode:    1,
					CapacityPerGPU: 5 * bytesize.GiB,
					Algorithm:      core.AlgBestFit,
					Strategy:       strat,
					Clock:          clk,
				})
				if err != nil {
					return nil, err
				}
				res, err := sim.RunWith(trace, cl, clk, sim.Config{})
				if err != nil {
					return nil, err
				}
				total += res.FinishTime.Seconds() / float64(reps)
			}
			finish[key{stratName, nodes}] = total
		}
	}
	for _, stratName := range cluster.StrategyNames() {
		var cells []float64
		for _, d := range nodeCounts {
			cells = append(cells, finish[key{stratName, d}])
		}
		t.AddRow(stratName, cells)
	}
	speedup := finish[key{cluster.StrategySpread, 1}] / finish[key{cluster.StrategySpread, 4}]
	return &Report{
		ID:     "cluster",
		Title:  "cluster (Swarm-style) extension (paper §V future work)",
		Tables: []*metrics.Table{t},
		Notes: []string{
			shapeNote(fmt.Sprintf("adding nodes shortens the batch (x%.2f from 1 to 4 nodes, spread)", speedup),
				speedup > 1.02),
		},
	}, nil
}
