package experiments

import (
	"fmt"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/metrics"
	"convgpu/internal/sim"
	"convgpu/internal/workload"
)

func init() {
	register("sensitivity", "extension: sensitivity of the Fig. 7 result to arrival rate and GPU capacity", Sensitivity)
}

// Sensitivity probes how robust the paper's headline scheduling result
// (Best-Fit fastest under contention) is to the two parameters the
// paper fixed: the arrival spacing (5 s) and the GPU capacity (the
// K20m's 5 GiB). Faster arrivals and smaller GPUs increase contention;
// slower arrivals and bigger GPUs dissolve it — and with it, the
// difference between algorithms.
func Sensitivity(opt Options) (*Report, error) {
	n, reps := 30, 4
	if opt.Quick {
		n, reps = 24, 2
	}
	spacings := []time.Duration{2 * time.Second, 5 * time.Second, 10 * time.Second}
	capacities := []bytesize.Size{4 * bytesize.GiB, 5 * bytesize.GiB, 8 * bytesize.GiB}

	runCell := func(spacing time.Duration, capacity bytesize.Size, alg string) (time.Duration, error) {
		var total time.Duration
		for rep := 0; rep < reps; rep++ {
			trace := workload.GenerateTrace(n, spacing, 61000+int64(rep))
			res, err := sim.Run(trace, sim.Config{Algorithm: alg, AlgSeed: 1, Capacity: capacity})
			if err != nil {
				return 0, err
			}
			total += res.FinishTime / time.Duration(reps)
		}
		return total, nil
	}

	// Table 1: spacing sweep at the paper's 5 GiB.
	spacingTable := &metrics.Table{
		Title:     fmt.Sprintf("S1: finished time (s) vs arrival spacing, %d containers, 5 GiB GPU", n),
		ColHeader: "arrival spacing",
	}
	for _, sp := range spacings {
		spacingTable.Cols = append(spacingTable.Cols, sp.String())
	}
	type key struct {
		alg string
		i   int
	}
	finish := map[key]time.Duration{}
	for _, alg := range core.AlgorithmNames() {
		var cells []float64
		for i, sp := range spacings {
			ft, err := runCell(sp, 5*bytesize.GiB, alg)
			if err != nil {
				return nil, err
			}
			finish[key{alg, i}] = ft
			cells = append(cells, ft.Seconds())
		}
		spacingTable.AddRow(alg, cells)
	}

	// Table 2: capacity sweep at the paper's 5 s spacing.
	capTable := &metrics.Table{
		Title:     fmt.Sprintf("S2: finished time (s) vs GPU capacity, %d containers, 5s arrivals", n),
		ColHeader: "GPU capacity",
	}
	for _, c := range capacities {
		capTable.Cols = append(capTable.Cols, c.String())
	}
	capFinish := map[key]time.Duration{}
	for _, alg := range core.AlgorithmNames() {
		var cells []float64
		for i, c := range capacities {
			ft, err := runCell(5*time.Second, c, alg)
			if err != nil {
				return nil, err
			}
			capFinish[key{alg, i}] = ft
			cells = append(cells, ft.Seconds())
		}
		capTable.AddRow(alg, cells)
	}

	// Shape analysis.
	bfWinsTight := finish[key{core.AlgBestFit, 0}] <= finish[key{core.AlgFIFO, 0}] &&
		finish[key{core.AlgBestFit, 0}] <= finish[key{core.AlgRecentUse, 0}]
	spreadLoose := relSpread(
		finish[key{core.AlgFIFO, 2}], finish[key{core.AlgBestFit, 2}],
		finish[key{core.AlgRecentUse, 2}], finish[key{core.AlgRandom, 2}])
	spreadTight := relSpread(
		finish[key{core.AlgFIFO, 0}], finish[key{core.AlgBestFit, 0}],
		finish[key{core.AlgRecentUse, 0}], finish[key{core.AlgRandom, 0}])
	bigGPUSpread := relSpread(
		capFinish[key{core.AlgFIFO, 2}], capFinish[key{core.AlgBestFit, 2}],
		capFinish[key{core.AlgRecentUse, 2}], capFinish[key{core.AlgRandom, 2}])
	smallGPUSlower := capFinish[key{core.AlgFIFO, 0}] > capFinish[key{core.AlgFIFO, 2}]

	return &Report{
		ID:     "sensitivity",
		Title:  "arrival-rate and capacity sensitivity of the scheduling result",
		Tables: []*metrics.Table{spacingTable, capTable},
		Notes: []string{
			shapeNote("Best-Fit (co-)fastest under the tightest arrivals", bfWinsTight),
			shapeNote(fmt.Sprintf("algorithm spread shrinks as contention dissolves (%.0f%% at 2s vs %.0f%% at 10s spacing)",
				spreadTight*100, spreadLoose*100), spreadLoose <= spreadTight+0.02),
			shapeNote(fmt.Sprintf("an 8 GiB GPU nearly equalizes the algorithms (spread %.0f%%)", bigGPUSpread*100),
				bigGPUSpread < 0.10),
			shapeNote("a 4 GiB GPU lengthens the batch vs 8 GiB", smallGPUSlower),
		},
	}, nil
}

func relSpread(vals ...time.Duration) float64 {
	if len(vals) == 0 {
		return 0
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min <= 0 {
		return 0
	}
	return float64(max-min) / float64(min)
}
