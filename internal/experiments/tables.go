package experiments

import (
	"fmt"

	"convgpu/internal/metrics"
	"convgpu/internal/workload"
	"convgpu/internal/wrapper"
)

func init() {
	register("table2", "CUDA APIs covered by the wrapper module", Table2)
	register("table3", "evaluation container types (AWS T2 style)", Table3)
}

// table2Descriptions mirrors the paper's Table II descriptions.
var table2Descriptions = map[string]string{
	"cudaMalloc":                "memory allocation API in CUDA Runtime API, general purpose",
	"cudaMallocManaged":         "memory allocation with same address in CPU memory",
	"cudaMallocPitch":           "allocate pitched memory for fast multi-dimension access",
	"cudaMalloc3D":              "like cudaMallocPitch, specialized in 3D arrays",
	"cudaFree":                  "memory deallocation API in CUDA Runtime API",
	"cudaMemGetInfo":            "retrieves current memory usage information",
	"cudaGetDeviceProperties":   "retrieves device information (pitch size etc.)",
	"__cudaUnregisterFatBinary": "unregisters the CUDA FAT binary on process exit (implicit)",
}

// Table2 regenerates the paper's Table II: the API surface the wrapper
// module intercepts, verified against the implementation.
func Table2(opt Options) (*Report, error) {
	apis := wrapper.InterceptedAPIs()
	rep := &Report{
		ID:    "table2",
		Title: "APIs covered by the wrapper module (paper Table II)",
	}
	missing := 0
	for _, api := range apis {
		desc, ok := table2Descriptions[api]
		if !ok {
			missing++
			desc = "(not in paper Table II)"
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf("%-26s %s", api, desc))
	}
	rep.Notes = append(rep.Notes,
		shapeNote(fmt.Sprintf("wrapper covers exactly the paper's %d Table II entries", len(table2Descriptions)),
			missing == 0 && len(apis) == len(table2Descriptions)))
	return rep, nil
}

// Table3 regenerates the paper's Table III: the AWS-T2-style container
// types used by the scheduling experiments.
func Table3(opt Options) (*Report, error) {
	t := &metrics.Table{
		Title: "Table III: evaluation container types",
		Cols:  []string{"vCPU", "memory (GiB)", "GPU memory (MiB)", "sample runtime (s)"},
	}
	for _, ct := range workload.Types() {
		t.AddRow(ct.Name, []float64{
			float64(ct.VCPU),
			float64(ct.Memory) / float64(1<<30),
			float64(ct.GPUMemory) / float64(1<<20),
			ct.SampleDuration().Seconds(),
		})
	}
	return &Report{
		ID:     "table3",
		Title:  "evaluation container types (paper Table III)",
		Tables: []*metrics.Table{t},
		Notes: []string{
			shapeNote("six types, GPU memory 128..4096 MiB doubling", len(workload.Types()) == 6),
			"sample runtime spans the paper's 5-45 s range across the types",
		},
	}, nil
}
