package experiments

import (
	"fmt"
	"time"

	"convgpu/internal/core"
	"convgpu/internal/metrics"
	"convgpu/internal/sim"
	"convgpu/internal/workload"
)

func init() {
	register("starvation", "per-type suspension breakdown: which container sizes wait under each algorithm", Starvation)
	register("poisson", "extension: bursty (Poisson) arrivals vs the paper's uniform cadence", Poisson)
}

// Starvation decomposes Fig. 8's average suspension by Table III
// container type, at the heaviest load point. The paper attributes
// Best-Fit's suspension profile to starvation "if there is no same size
// matched among the running containers" — this experiment shows
// directly which sizes bear the waiting under each algorithm.
func Starvation(opt Options) (*Report, error) {
	n, reps := 38, 6
	if opt.Quick {
		n, reps = 28, 2
	}
	types := workload.Types()
	t := &metrics.Table{
		Title:     fmt.Sprintf("Per-type average suspended time (s), %d containers", n),
		ColHeader: "container type",
	}
	for _, ct := range types {
		t.Cols = append(t.Cols, ct.Name)
	}
	perAlg := map[string]map[string]time.Duration{}
	for _, alg := range core.AlgorithmNames() {
		sums := map[string]time.Duration{}
		counts := map[string]int{}
		for rep := 0; rep < reps; rep++ {
			trace := workload.GenerateTrace(n, workload.DefaultSpacing, 73000+int64(rep))
			res, err := sim.Run(trace, sim.Config{Algorithm: alg, AlgSeed: 1})
			if err != nil {
				return nil, err
			}
			for typ, d := range res.SuspendedByType {
				sums[typ] += d
				counts[typ]++
			}
		}
		avg := map[string]time.Duration{}
		var cells []float64
		for _, ct := range types {
			if c := counts[ct.Name]; c > 0 {
				avg[ct.Name] = sums[ct.Name] / time.Duration(c)
			}
			cells = append(cells, avg[ct.Name].Seconds())
		}
		perAlg[alg] = avg
		t.AddRow(alg, cells)
	}

	// Shape checks, per the paper's §IV-C mechanism:
	// 1. FIFO is size-fair — its per-type suspensions stay within a
	//    moderate band because arrival order, not size, decides.
	fifoSpread := typeSpread(perAlg[core.AlgFIFO], types)
	// 2. Best-Fit starves the big tiers: its large+xlarge average far
	//    exceeds its nano+micro average ("starving may occur if there is
	//    no same size matched among the running containers").
	bfSmall := (perAlg[core.AlgBestFit]["nano"] + perAlg[core.AlgBestFit]["micro"]) / 2
	bfBig := (perAlg[core.AlgBestFit]["large"] + perAlg[core.AlgBestFit]["xlarge"]) / 2
	return &Report{
		ID:     "starvation",
		Title:  "who waits: suspension by container size and algorithm",
		Tables: []*metrics.Table{t},
		Notes: []string{
			shapeNote(fmt.Sprintf("FIFO is size-fair (per-type spread %.1fx)", fifoSpread), fifoSpread < 2.5),
			shapeNote(fmt.Sprintf("Best-Fit starves large containers (big tiers wait %.1fx the small tiers) — "+
				"the paper's §IV-C starvation mechanism, isolated", float64(bfBig)/float64(bfSmall)),
				bfBig > bfSmall*3/2),
			"Best-Fit's low OVERALL average (Fig. 8 here) is many fast small containers amortizing " +
				"a starved big tail; the paper's higher BF average weights that tail differently",
		},
	}, nil
}

// Poisson compares the paper's uniform five-second cadence against a
// Poisson arrival process with the same mean rate: bursts raise peak
// contention, lengthening both the batch and the waiting, without
// changing which algorithm wins.
func Poisson(opt Options) (*Report, error) {
	n, reps := 30, 6
	if opt.Quick {
		n, reps = 24, 2
	}
	t := &metrics.Table{
		Title:     fmt.Sprintf("Uniform vs Poisson arrivals (mean 5s), %d containers", n),
		ColHeader: "arrival process",
		Cols:      []string{"uniform finish (s)", "poisson finish (s)", "uniform susp (s)", "poisson susp (s)"},
	}
	type agg struct{ finish, susp time.Duration }
	results := map[string]map[bool]agg{}
	for _, alg := range core.AlgorithmNames() {
		results[alg] = map[bool]agg{}
		for _, poisson := range []bool{false, true} {
			var a agg
			for rep := 0; rep < reps; rep++ {
				seed := 81000 + int64(rep)
				var trace []workload.TraceEntry
				if poisson {
					trace = workload.GeneratePoissonTrace(n, workload.DefaultSpacing, seed)
				} else {
					trace = workload.GenerateTrace(n, workload.DefaultSpacing, seed)
				}
				res, err := sim.Run(trace, sim.Config{Algorithm: alg, AlgSeed: 1})
				if err != nil {
					return nil, err
				}
				a.finish += res.FinishTime / time.Duration(reps)
				a.susp += res.AvgSuspended / time.Duration(reps)
			}
			results[alg][poisson] = a
		}
		t.AddRow(alg, []float64{
			results[alg][false].finish.Seconds(), results[alg][true].finish.Seconds(),
			results[alg][false].susp.Seconds(), results[alg][true].susp.Seconds(),
		})
	}
	// Direction of the burstiness effect (reported, not asserted: with
	// an arrival rate near the service rate, Poisson's long gaps drain
	// the backlog that the uniform cadence builds monotonically, so the
	// batch can finish FASTER despite the bursts).
	direction := "shortened"
	if results[core.AlgFIFO][true].finish > results[core.AlgFIFO][false].finish {
		direction = "lengthened"
	}
	// Best-Fit remains (co-)fastest under bursts.
	bfStillWins := true
	for _, alg := range core.AlgorithmNames() {
		if results[alg][true].finish < results[core.AlgBestFit][true].finish*97/100 {
			bfStillWins = false
		}
	}
	return &Report{
		ID:     "poisson",
		Title:  "bursty (Poisson) arrivals vs uniform cadence",
		Tables: []*metrics.Table{t},
		Notes: []string{
			fmt.Sprintf("Poisson arrivals %s the batch at this load: long inter-arrival gaps drain "+
				"the backlog the uniform 5s cadence accumulates", direction),
			shapeNote("Best-Fit stays within 3% of the best under bursty arrivals", bfStillWins),
		},
	}, nil
}

// typeSpread is max/min of the per-type suspensions (ignoring types
// that never waited).
func typeSpread(avg map[string]time.Duration, types []workload.ContainerType) float64 {
	var min, max time.Duration
	for _, ct := range types {
		d := avg[ct.Name]
		if d <= 0 {
			continue
		}
		if min == 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min == 0 {
		return 1
	}
	return float64(max) / float64(min)
}
