package experiments

import (
	"fmt"
	"time"

	"convgpu/internal/core"
	"convgpu/internal/metrics"
	"convgpu/internal/policy"
	"convgpu/internal/sim"
)

func init() {
	register("fig78-scale",
		"Fig. 7/8 re-test at 100x the paper's cohort: 3200 containers under all seven wake policies", Fig78Scale)
}

// Fig78Scale re-runs the paper's Fig. 7/8 experiment two orders of
// magnitude past the testbed: a single 3200-container cohort (the paper
// tops out at 38, with 32 as the last Best-Fit win reported) under all
// seven registered wake policies, not just the paper's four. The
// question it answers is whether Best-Fit's finish-time advantage — the
// paper's headline claim — survives when the queue is deep enough that
// its starvation pathology (Fig. 8's caveat) has 100x the opportunity
// to bite. Quick mode runs a 320-container cohort for CI.
func Fig78Scale(opt Options) (*Report, error) {
	s := sim.DefaultSweep()
	s.Counts = []int{3200}
	s.Reps = 1
	s.Algorithms = policy.WakeNames()
	// Registry policies (fairshare, quota, priority) are unknown to
	// core.NewAlgorithm; route all resolution through the registry.
	s.Config.WakeFactory = func(name string, seed int64) (core.Algorithm, error) {
		return policy.NewWake(name, policy.Config{Seed: seed})
	}
	if opt.Quick {
		s.Counts = []int{320}
	}
	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "fig78-scale",
		Title: "finished/suspended time at 100x the paper's scale, all seven wake policies (extends Fig. 7/8)",
		Tables: []*metrics.Table{
			res.FinishTable(), res.SuspendTable(), res.UtilizationTable(),
		},
	}
	rep.Notes = appendScaleNotes(rep.Notes, res)
	return rep, nil
}

func appendScaleNotes(notes []string, res *sim.SweepResult) []string {
	n := res.Sweep.Counts[0]
	// Claim under test: Best-Fit stays fastest (or within noise of
	// fastest) when the paper's 32-container "heavy load" regime is
	// scaled 100x.
	bf := res.Cells[core.AlgBestFit][n].FinishTime
	fastest, fastestAlg := bf, core.AlgBestFit
	var worst time.Duration
	for _, alg := range res.Sweep.Algorithms {
		ft := res.Cells[alg][n].FinishTime
		if ft < fastest {
			fastest, fastestAlg = ft, alg
		}
		if ft > worst {
			worst = ft
		}
	}
	gap := 0.0
	if fastest > 0 {
		gap = float64(bf-fastest) / float64(fastest)
	}
	notes = append(notes, shapeNote(
		fmt.Sprintf("Best-Fit within 5%% of the fastest policy (%s) at %d containers (gap %.1f%%, spread to worst %.0fs)",
			fastestAlg, n, gap*100, seconds(worst-fastest)),
		gap < 0.05))
	// Fig. 8's starvation caveat, quantified at scale: does Best-Fit
	// pay for its packing with the worst average suspension?
	bfSusp := res.Cells[core.AlgBestFit][n].AvgSuspended
	maxSusp := time.Duration(0)
	for _, alg := range res.Sweep.Algorithms {
		if s := res.Cells[alg][n].AvgSuspended; s > maxSusp {
			maxSusp = s
		}
	}
	notes = append(notes, fmt.Sprintf(
		"Best-Fit average suspension at %d containers: %.0fs (worst policy: %.0fs) — the paper's Fig. 8 starvation caveat, 100x deeper queue",
		n, seconds(bfSusp), seconds(maxSusp)))
	stalls := 0
	for _, m := range res.Cells {
		for _, c := range m {
			stalls += c.Stalls
		}
	}
	notes = append(notes, shapeNote(fmt.Sprintf("no run wedged at scale (%d stalls)", stalls), stalls == 0))
	return notes
}
