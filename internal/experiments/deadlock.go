package experiments

import (
	"fmt"
	"sync"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/cuda"
	"convgpu/internal/gpu"
	"convgpu/internal/inproc"
	"convgpu/internal/metrics"
	"convgpu/internal/wrapper"
)

func init() {
	register("deadlock", "program failure on raw GPU sharing vs. completion under ConVGPU (paper §I)", Deadlock)
}

// Deadlock demonstrates the paper's motivating failure (§I): two
// containers sharing one GPU through plain NVIDIA Docker collide on
// device memory — the loser's allocation fails outright ("a program
// failure[,] in the worst case a deadlock situation"). Under ConVGPU the
// same workloads both complete: the second container's allocation is
// suspended until the first releases its memory.
func Deadlock(opt Options) (*Report, error) {
	const want = 4 * bytesize.GiB // two of these cannot share a 5 GiB GPU

	// --- Without ConVGPU: raw device, concurrent allocation. ---
	rawDev := gpu.New(gpu.K20m())
	rawResults := make([]error, 2)
	first := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rt := cuda.NewRuntime(rawDev, 100+i)
			if i == 1 {
				<-first // deterministic loser
			}
			ptr, err := rt.Malloc(want)
			if i == 0 {
				close(first)
			}
			rawResults[i] = err
			if err == nil {
				// The winner holds the memory for the duration of the
				// experiment, like a real training job would.
				_ = ptr
			}
		}(i)
	}
	wg.Wait()

	// --- With ConVGPU: same demands, scheduler arbitration. ---
	st, err := core.New(core.Config{Capacity: 5 * bytesize.GiB})
	if err != nil {
		return nil, err
	}
	hub := inproc.NewHub(st)
	dev := gpu.New(gpu.K20m())
	limit := want + core.DefaultContextOverhead
	managed := make([]error, 2)
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		id := core.ContainerID(fmt.Sprintf("job-%d", i))
		if _, err := hub.Register(id, limit); err != nil {
			return nil, err
		}
		go func(i int, id core.ContainerID) {
			mod := wrapper.New(cuda.NewRuntime(dev, 200+i), hub.Caller(id), 200+i)
			ptr, err := mod.Malloc(want)
			if err == nil {
				err = mod.Free(ptr)
				mod.Flush()
			}
			if uerr := mod.UnregisterFatBinary(); err == nil {
				err = uerr
			}
			managed[i] = err
			if _, cerr := hub.Close(id); err == nil && cerr != nil {
				managed[i] = cerr
			}
			done <- i
		}(i, id)
	}
	<-done
	<-done

	okStr := func(err error) float64 {
		if err == nil {
			return 1
		}
		return 0
	}
	t := &metrics.Table{
		Title: "A1: two 4 GiB containers on one 5 GiB GPU (1 = completed)",
		Cols:  []string{"container 1", "container 2"},
	}
	t.AddRow("raw sharing (NVIDIA Docker)", []float64{okStr(rawResults[0]), okStr(rawResults[1])})
	t.AddRow("with ConVGPU", []float64{okStr(managed[0]), okStr(managed[1])})

	rep := &Report{
		ID:     "deadlock",
		Title:  "raw GPU sharing failure vs. ConVGPU (paper §I motivation)",
		Tables: []*metrics.Table{t},
	}
	rep.Notes = append(rep.Notes,
		shapeNote("raw sharing: exactly one container fails with cudaErrorMemoryAllocation",
			(rawResults[0] == nil) != (rawResults[1] == nil) &&
				(rawResults[0] == cuda.ErrorMemoryAllocation || rawResults[1] == cuda.ErrorMemoryAllocation)),
		shapeNote("with ConVGPU: both containers complete",
			managed[0] == nil && managed[1] == nil),
	)
	return rep, nil
}
