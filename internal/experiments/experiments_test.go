package experiments

import (
	"strings"
	"testing"
)

// runQuick executes one experiment in quick mode and renders it.
func runQuick(t *testing.T, id string) *Report {
	t.Helper()
	rep, err := Run(id, Options{Quick: true})
	if err != nil {
		t.Fatalf("Run(%s): %v", id, err)
	}
	var b strings.Builder
	if err := rep.Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := rep.CSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() == 0 {
		t.Fatalf("%s rendered nothing", id)
	}
	return rep
}

// assertShapes fails on any "SHAPE MISMATCH" note.
func assertShapes(t *testing.T, rep *Report) {
	t.Helper()
	for _, n := range rep.Notes {
		if strings.HasPrefix(n, "SHAPE MISMATCH") {
			t.Errorf("%s: %s", rep.ID, n)
		}
	}
}

// runTimingQuick runs a wall-clock-sensitive experiment, retrying a
// bounded number of times: `go test ./...` runs packages in parallel,
// and the spin-calibrated device latencies of *other* packages' tests
// can distort a single timing run's ratios.
func runTimingQuick(t *testing.T, id string) {
	t.Helper()
	const attempts = 3
	for attempt := 1; ; attempt++ {
		rep, err := Run(id, Options{Quick: true})
		if err != nil {
			t.Fatalf("Run(%s): %v", id, err)
		}
		mismatch := ""
		for _, n := range rep.Notes {
			if strings.HasPrefix(n, "SHAPE MISMATCH") {
				mismatch = n
				break
			}
		}
		if mismatch == "" {
			return
		}
		if attempt == attempts {
			t.Fatalf("%s after %d attempts: %s", id, attempts, mismatch)
		}
		t.Logf("%s attempt %d: %s (retrying; timing noise)", id, attempt, mismatch)
	}
}

func TestIDsAndDescribe(t *testing.T) {
	ids := IDs()
	want := []string{"ablation-grants", "ablation-transport", "cluster", "deadlock",
		"fig4", "fig5", "fig6", "fig7", "fig78-scale", "fig8", "multigpu", "poisson",
		"sensitivity", "starvation", "table1", "table2", "table3"}
	if len(ids) != len(want) {
		t.Fatalf("IDs() = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", ids, want)
		}
		if Describe(ids[i]) == "" {
			t.Errorf("no description for %s", ids[i])
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable1(t *testing.T) {
	assertShapes(t, runQuick(t, "table1"))
}

func TestTable2(t *testing.T) {
	assertShapes(t, runQuick(t, "table2"))
}

func TestTable3(t *testing.T) {
	assertShapes(t, runQuick(t, "table3"))
}

func TestFig4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	runTimingQuick(t, "fig4")
}

func TestFig5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	runTimingQuick(t, "fig5")
}

func TestFig6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	runTimingQuick(t, "fig6")
}

func TestFig7Quick(t *testing.T) {
	assertShapes(t, runQuick(t, "fig7"))
}

func TestFig8Quick(t *testing.T) {
	rep := runQuick(t, "fig8")
	// fig8 carries an expected caveat note; only hard mismatches fail.
	assertShapes(t, rep)
}

func TestFig78ScaleQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("large virtual-time sweep")
	}
	// The 5% Best-Fit gap note is a soft observation at quick scale
	// (320 containers); only the no-stall shape is load-bearing, and
	// assertShapes catches it through the shared prefix.
	assertShapes(t, runQuick(t, "fig78-scale"))
}

func TestDeadlockQuick(t *testing.T) {
	assertShapes(t, runQuick(t, "deadlock"))
}

func TestAblationTransportQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	runTimingQuick(t, "ablation-transport")
}

func TestAblationGrantsQuick(t *testing.T) {
	assertShapes(t, runQuick(t, "ablation-grants"))
}

func TestMultiGPUQuick(t *testing.T) {
	assertShapes(t, runQuick(t, "multigpu"))
}

func TestClusterQuick(t *testing.T) {
	assertShapes(t, runQuick(t, "cluster"))
}

func TestSensitivityQuick(t *testing.T) {
	assertShapes(t, runQuick(t, "sensitivity"))
}

func TestStarvationQuick(t *testing.T) {
	assertShapes(t, runQuick(t, "starvation"))
}

func TestPoissonQuick(t *testing.T) {
	assertShapes(t, runQuick(t, "poisson"))
}
