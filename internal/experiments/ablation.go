package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/cuda"
	"convgpu/internal/gpu"
	"convgpu/internal/inproc"
	"convgpu/internal/ipc"
	"convgpu/internal/metrics"
	"convgpu/internal/protocol"
	"convgpu/internal/sim"
	"convgpu/internal/wrapper"
)

func init() {
	register("ablation-transport", "scheduler round-trip cost: in-process vs UNIX socket vs TCP (paper §III-A)", AblationTransport)
	register("ablation-grants", "grant semantics: reclaiming vs persistent assignments under load", AblationGrants)
}

// forwardHandler bridges an ipc server onto an in-process caller: the
// daemon's message semantics without the daemon, isolating transport
// cost.
type forwardHandler struct {
	caller wrapper.Caller
}

// Handle implements ipc.Handler. Each message is served on its own
// goroutine so a suspended request never stalls the connection; the
// pooled request is cloned because it must outlive Handle (ipc.Handler's
// ownership window).
func (h forwardHandler) Handle(conn *ipc.ServerConn, msg *protocol.Message, respond func(*protocol.Message)) {
	req := msg.Clone()
	go func() {
		resp, err := h.caller.Call(context.Background(), req)
		if err != nil {
			respond(&protocol.Message{OK: false, Error: err.Error()})
			return
		}
		respond(resp)
	}()
}

// Closed implements ipc.Handler.
func (h forwardHandler) Closed(conn *ipc.ServerConn) {}

// AblationTransport measures a full wrapped cudaMalloc+cudaFree cycle
// (request round trip + confirm round trip + async free report) over
// three transports. The paper chose UNIX sockets over TCP for
// "complexity and low performance" reasons and could not use plain
// shared memory for safety (§III-A); the in-process row shows how much
// of ConVGPU's overhead is transport versus scheduler logic.
func AblationTransport(opt Options) (*Report, error) {
	reps := 500
	if opt.Quick {
		reps = 50
	}
	// Zero-latency device: only middleware cost remains.
	measure := func(mkCaller func(hub *inproc.Hub) (wrapper.Caller, func(), error)) (time.Duration, error) {
		st, err := core.New(core.Config{Capacity: 5 * bytesize.GiB})
		if err != nil {
			return 0, err
		}
		hub := inproc.NewHub(st)
		if _, err := hub.Register("t", bytesize.GiB); err != nil {
			return 0, err
		}
		caller, cleanup, err := mkCaller(hub)
		if err != nil {
			return 0, err
		}
		defer cleanup()
		dev := gpu.New(gpu.K20m())
		mod := wrapper.New(cuda.NewRuntime(dev, 7), caller, 7)
		// Warm up (context overhead, socket buffers).
		for i := 0; i < 5; i++ {
			p, err := mod.Malloc(4096)
			if err != nil {
				return 0, err
			}
			if err := mod.Free(p); err != nil {
				return 0, err
			}
		}
		mod.Flush()
		start := time.Now()
		for i := 0; i < reps; i++ {
			p, err := mod.Malloc(4096)
			if err != nil {
				return 0, err
			}
			if err := mod.Free(p); err != nil {
				return 0, err
			}
		}
		mod.Flush()
		return time.Since(start) / time.Duration(reps), nil
	}

	direct, err := measure(func(hub *inproc.Hub) (wrapper.Caller, func(), error) {
		return hub.Caller("t"), func() {}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("ablation-transport direct: %w", err)
	}
	unix, err := measure(func(hub *inproc.Hub) (wrapper.Caller, func(), error) {
		dir, err := os.MkdirTemp("", "convgpu-abl")
		if err != nil {
			return nil, nil, err
		}
		srv, err := ipc.Listen(filepath.Join(dir, "s.sock"), forwardHandler{hub.Caller("t")})
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		cli, err := ipc.Dial(srv.Addr())
		if err != nil {
			srv.Close()
			os.RemoveAll(dir)
			return nil, nil, err
		}
		return cli, func() { cli.Close(); srv.Close(); os.RemoveAll(dir) }, nil
	})
	if err != nil {
		return nil, fmt.Errorf("ablation-transport unix: %w", err)
	}
	tcp, err := measure(func(hub *inproc.Hub) (wrapper.Caller, func(), error) {
		srv, err := ipc.ListenNet("tcp", "127.0.0.1:0", forwardHandler{hub.Caller("t")})
		if err != nil {
			return nil, nil, err
		}
		cli, err := ipc.DialNet("tcp", srv.Addr())
		if err != nil {
			srv.Close()
			return nil, nil, err
		}
		return cli, func() { cli.Close(); srv.Close() }, nil
	})
	if err != nil {
		return nil, fmt.Errorf("ablation-transport tcp: %w", err)
	}

	t := &metrics.Table{
		Title: "A2a: wrapped cudaMalloc+cudaFree cycle by scheduler transport (µs)",
		Cols:  []string{"µs/cycle"},
	}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	t.AddRow("in-process (no transport)", []float64{us(direct)})
	t.AddRow("UNIX domain socket (paper's choice)", []float64{us(unix)})
	t.AddRow("TCP loopback", []float64{us(tcp)})
	return &Report{
		ID:     "ablation-transport",
		Title:  "scheduler transport cost (paper §III-A design choice)",
		Tables: []*metrics.Table{t},
		Notes: []string{
			shapeNote("UNIX socket cheaper than TCP", unix < tcp),
			shapeNote("transport dominates middleware cost (socket >> in-process)", unix > 2*direct),
		},
	}, nil
}

// AblationGrants compares the two readings of the paper's assignment
// semantics under heavy load: the default, which reclaims the unused
// assignments of paused containers at every redistribution, and the
// persistent reading, where assignments stick until the container
// closes. The persistent reading strands memory with paused containers
// and wedges Recent-Use and Random — evidence that a working ConVGPU
// must reclaim, even though the paper never says so explicitly.
func AblationGrants(opt Options) (*Report, error) {
	counts := []int{24, 38}
	reps := 4
	if opt.Quick {
		counts = []int{24}
		reps = 2
	}
	t := &metrics.Table{Title: "A2b: grant semantics under load", ColHeader: "containers"}
	for _, n := range counts {
		t.Cols = append(t.Cols, fmt.Sprintf("finish@%d (s)", n), fmt.Sprintf("stalls@%d", n))
	}
	type mode struct {
		name                      string
		persistent, faultTolerant bool
	}
	modes := []mode{
		{"reclaim", false, false},
		{"persistent", true, false},
		{"persistent+rescue", true, true},
	}
	stalls := map[string]int{}
	for _, m := range modes {
		for _, alg := range core.AlgorithmNames() {
			var cells []float64
			for _, n := range counts {
				s := sim.Sweep{
					Counts:     []int{n},
					Algorithms: []string{alg},
					Reps:       reps,
					BaseSeed:   20170712,
					Config: sim.Config{
						PersistentGrants: m.persistent,
						FaultTolerant:    m.faultTolerant,
					},
				}
				res, err := s.Run()
				if err != nil {
					return nil, err
				}
				cell := res.Cells[alg][n]
				cells = append(cells, cell.FinishTime.Seconds(), float64(cell.Stalls))
				stalls[m.name] += cell.Stalls
			}
			t.AddRow(fmt.Sprintf("%s (%s)", alg, m.name), cells)
		}
	}
	return &Report{
		ID:     "ablation-grants",
		Title:  "reclaiming vs persistent grant assignments, with and without the [10] rescue pass",
		Tables: []*metrics.Table{t},
		Notes: []string{
			shapeNote("reclaiming semantics never wedge", stalls["reclaim"] == 0),
			shapeNote("persistent semantics wedge Recent-Use/Random under load", stalls["persistent"] > 0),
			shapeNote("the fault-tolerance rescue pass [10] removes every persistent-mode wedge",
				stalls["persistent+rescue"] == 0),
		},
	}, nil
}
