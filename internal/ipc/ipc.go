// Package ipc implements the UNIX-domain-socket transport ConVGPU uses
// between the host-side scheduler and the per-container wrapper modules
// (paper §III-A). The paper chose UNIX sockets because Docker blocks other
// host<->container IPC and TCP costs more; the scheduler creates one
// socket per container inside a shared volume directory.
//
// Framing is newline-delimited JSON (package protocol). A connection
// multiplexes concurrent requests: responses are matched to requests by
// sequence number, so the scheduler can withhold the response to a
// suspended allocation while continuing to serve the container's other
// processes.
//
// # Hot-path memory discipline
//
// The transport threads pooled protocol.Message objects and pooled line
// buffers through its read and write loops, so a steady-state request
// cycle does near-zero heap allocation. That imposes ownership windows
// (see Handler and DESIGN.md §"Hot path"): a request message is valid
// only until Handle returns, and a response message passed to respond or
// Send is consumed by the transport.
//
// # Write coalescing
//
// Outbound writes go through a coalescing writer: the sender appends its
// line to a shared buffer and at most one goroutine per connection (the
// current "leader") performs the socket write. Senders arriving while
// the leader is inside the syscall buffer behind it and are flushed by
// the leader's next pass — a redistribution that admits N suspended
// tickets on one connection costs ~1 write syscall instead of N (the
// daemon brackets such bursts with BeginBatch/EndBatch). An uncontended
// send flushes immediately on the caller's goroutine, adding no latency.
package ipc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"convgpu/internal/protocol"
)

// MaxLine bounds a single message line. A message is a small JSON object;
// anything larger indicates a corrupt or hostile peer.
const MaxLine = 64 * 1024

// readBufSize sizes the per-connection read buffer. 4 KiB (the old
// size) fits any single message but forces extra read syscalls when
// responses burst after a redistribution; 16 KiB absorbs a burst of
// ~100 coalesced lines in one read.
const readBufSize = 16 * 1024

// ErrClosed is returned for operations on a closed client or server.
var ErrClosed = errors.New("ipc: connection closed")

// Handler reacts to requests arriving on a server connection.
//
// Handle must eventually call respond exactly once with the response
// message; it may do so after returning (that is how the scheduler
// suspends an allocation: it parks respond until memory is granted).
// Closed is invoked once when the connection drops, letting the scheduler
// release any requests still parked on it.
//
// Ownership: msg is pooled — it is valid only until Handle returns, and
// a handler that needs it afterwards (e.g. to serve it on another
// goroutine) must work on msg.Clone(). The message passed to respond is
// consumed: the transport writes it and returns it to the pool, so the
// caller must not touch it after respond returns.
type Handler interface {
	Handle(conn *ServerConn, msg *protocol.Message, respond func(*protocol.Message))
	Closed(conn *ServerConn)
}

// Server accepts connections on a UNIX socket and dispatches messages to
// a Handler.
type Server struct {
	ln      net.Listener
	handler Handler
	wg      sync.WaitGroup

	mu     sync.Mutex
	conns  map[*ServerConn]struct{}
	closed bool
}

// Listen creates a UNIX socket at path and starts accepting connections.
func Listen(path string, h Handler) (*Server, error) {
	return ListenNet("unix", path, h)
}

// ListenNet is Listen over an arbitrary network ("unix", "tcp"). The
// paper chose UNIX sockets over TCP for complexity and performance
// reasons (§III-A); the TCP path exists so the transport ablation can
// measure that choice.
func ListenNet(network, addr string, h Handler) (*Server, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("ipc: listen %s %s: %w", network, addr, err)
	}
	return NewServer(ln, h), nil
}

// NewServer serves connections accepted from an established listener —
// the seam through which tests and the fault-injection harness
// substitute a wrapped net.Listener.
func NewServer(ln net.Listener, h Handler) *Server {
	s := &Server{ln: ln, handler: h, conns: make(map[*ServerConn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the socket path the server listens on.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		sc := &ServerConn{conn: c, server: s, w: newCoalescer(c)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sc.readLoop(s.handler)
			// A poisoned frame (oversized, unreadable) exits the loop with
			// the socket still open; close it so the peer sees a dead
			// connection instead of hanging on a response that will never
			// come.
			sc.conn.Close()
			s.mu.Lock()
			delete(s.conns, sc)
			s.mu.Unlock()
			s.handler.Closed(sc)
		}()
	}
}

// Close shuts the listener and all live connections down and waits for
// the handler goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*ServerConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	s.wg.Wait()
	return err
}

// ServerConn is one accepted connection. The scheduler attaches the
// owning container's identity to it via SetTag.
type ServerConn struct {
	conn   net.Conn
	server *Server
	w      *coalescer

	tagMu sync.Mutex
	tag   string
}

// SetTag associates an identity (the container ID) with the connection.
func (c *ServerConn) SetTag(tag string) {
	c.tagMu.Lock()
	defer c.tagMu.Unlock()
	c.tag = tag
}

// Tag returns the identity set by SetTag, or "".
func (c *ServerConn) Tag() string {
	c.tagMu.Lock()
	defer c.tagMu.Unlock()
	return c.tag
}

// Send writes a message on the connection. Sends are serialized by the
// coalescing writer, so delayed responses from parked allocation
// requests never interleave bytes with concurrent replies. The message
// is only read, never retained.
func (c *ServerConn) Send(m *protocol.Message) error {
	buf := protocol.AcquireBuffer()
	*buf = protocol.AppendEncode((*buf)[:0], m)
	err := c.w.write(*buf)
	protocol.ReleaseBuffer(buf)
	return err
}

// BeginBatch suspends flushing so a burst of Sends — the responses a
// single scheduler Update releases — leaves in one socket write. Every
// BeginBatch must be paired with EndBatch.
func (c *ServerConn) BeginBatch() { c.w.beginBatch() }

// EndBatch re-enables flushing and flushes what the batch buffered.
func (c *ServerConn) EndBatch() error { return c.w.endBatch() }

func (c *ServerConn) readLoop(h Handler) {
	r := bufio.NewReaderSize(c.conn, readBufSize)
	var scratch []byte
	msg := protocol.AcquireMessage()
	defer protocol.ReleaseMessage(msg)
	for {
		line, err := readLine(r, &scratch)
		if err != nil {
			return
		}
		if err := protocol.DecodeInto(msg, line); err != nil {
			// A malformed message gets an error response echoing the
			// request's sequence number when we can still extract it from
			// the bad line, so the caller can correlate the failure
			// instead of timing out.
			resp := protocol.AcquireMessage()
			resp.Type = protocol.TypeResponse
			resp.Seq = protocol.ScanSeq(line)
			resp.Error = err.Error()
			c.Send(resp)
			protocol.ReleaseMessage(resp)
			continue
		}
		respond := respondOnce(c, msg.Seq)
		safeHandle(h, c, msg, respond)
		msg.Reset()
	}
}

// safeHandle runs Handle with panic recovery: one request tripping a bug
// must not take the whole daemon down (and every other container's
// connection with it). The panicked request gets an error response
// through its respondOnce wrapper — a no-op if the handler responded
// before panicking — and the connection keeps serving.
func safeHandle(h Handler, c *ServerConn, msg *protocol.Message, respond func(*protocol.Message)) {
	defer func() {
		if r := recover(); r != nil {
			resp := protocol.AcquireMessage()
			resp.Error = fmt.Sprintf("ipc: handler panic: %v", r)
			respond(resp)
		}
	}()
	h.Handle(c, msg, respond)
}

// respondOnce wraps ServerConn.Send so a handler calling respond more
// than once (a bug) cannot emit duplicate responses on the wire. It
// captures the sequence number by value: the request message itself is
// pooled and must not outlive Handle.
func respondOnce(c *ServerConn, seq uint64) func(*protocol.Message) {
	var once sync.Once
	return func(resp *protocol.Message) {
		once.Do(func() {
			resp.Seq = seq
			resp.Type = protocol.TypeResponse
			c.Send(resp)
		})
		// The transport consumes the response whether or not it was the
		// winning call; see Handler's ownership contract.
		protocol.ReleaseMessage(resp)
	}
}

// readLine returns the next newline-terminated line. The returned slice
// is valid only until the next call: it aliases either the bufio buffer
// (the common, allocation-free case) or *scratch, which is reused across
// calls for lines that straddle buffer boundaries.
func readLine(r *bufio.Reader, scratch *[]byte) ([]byte, error) {
	chunk, isPrefix, err := r.ReadLine()
	if err != nil {
		return nil, err
	}
	if !isPrefix {
		return chunk, nil // whole line already buffered: zero copies
	}
	buf := append((*scratch)[:0], chunk...)
	for isPrefix {
		chunk, isPrefix, err = r.ReadLine()
		if err != nil {
			return nil, err
		}
		buf = append(buf, chunk...)
		if len(buf) > MaxLine {
			return nil, fmt.Errorf("ipc: message exceeds %d bytes", MaxLine)
		}
	}
	*scratch = buf
	return buf, nil
}

// Client is the wrapper-module side of a connection.
type Client struct {
	conn net.Conn
	w    *coalescer

	mu      sync.Mutex
	pending map[uint64]chan *protocol.Message
	seq     uint64
	closed  bool
	readErr error
	done    chan struct{}
}

// Dial connects to the scheduler's UNIX socket at path.
func Dial(path string) (*Client, error) {
	return DialNet("unix", path)
}

// DialNet is Dial over an arbitrary network ("unix", "tcp").
func DialNet(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("ipc: dial %s %s: %w", network, addr, err)
	}
	return NewClient(conn), nil
}

// NewClient runs the wrapper-side protocol over an established
// connection — the seam the Reconnector and the fault-injection harness
// dial through.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		w:       newCoalescer(conn),
		pending: make(map[uint64]chan *protocol.Message),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	r := bufio.NewReaderSize(c.conn, readBufSize)
	var scratch []byte
	var err error
	for {
		var line []byte
		line, err = readLine(r, &scratch)
		if err != nil {
			break
		}
		msg := protocol.AcquireMessage()
		if derr := protocol.DecodeInto(msg, line); derr != nil {
			protocol.ReleaseMessage(msg)
			continue // skip unparseable frames; Call timeouts surface it
		}
		// Deliver while holding mu: the map removal and the channel send
		// are atomic with respect to forget, so a response racing a
		// Call's context cancellation is either handed to the (buffered)
		// channel — where the cancelled Call drains it — or dropped here.
		// Either way this loop never blocks on a forgotten sequence.
		c.mu.Lock()
		ch, ok := c.pending[msg.Seq]
		if ok {
			delete(c.pending, msg.Seq)
			select {
			case ch <- msg:
			default: // impossible: each seq gets one buffered slot
				protocol.ReleaseMessage(msg)
			}
		}
		c.mu.Unlock()
		if !ok {
			protocol.ReleaseMessage(msg) // forgotten seq: drop, don't block
		}
	}
	if err == io.EOF {
		err = ErrClosed
	}
	// The transport is unusable once the read loop exits (a response
	// could never be matched): poison the writer so late sends fail fast
	// and close the socket so the peer's read loop ends too.
	c.w.stop()
	c.conn.Close()
	c.mu.Lock()
	c.closed = true
	c.readErr = err
	for seq, ch := range c.pending {
		close(ch)
		delete(c.pending, seq)
	}
	c.mu.Unlock()
	close(c.done)
}

// Call sends m (assigning a fresh sequence number) and blocks until the
// matching response arrives, the context is done, or the connection
// fails. A suspended allocation simply blocks here — that is the
// mechanism by which ConVGPU pauses a container's allocation call.
//
// The returned response is owned by the caller; callers on an
// allocation hot path may hand it back via protocol.ReleaseMessage once
// they are done reading it.
func (c *Client) Call(ctx context.Context, m *protocol.Message) (*protocol.Message, error) {
	ch := make(chan *protocol.Message, 1)
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	c.seq++
	m.Seq = c.seq
	c.pending[m.Seq] = ch
	c.mu.Unlock()

	buf := protocol.AcquireBuffer()
	*buf = protocol.AppendEncode((*buf)[:0], m)
	err := c.w.write(*buf)
	protocol.ReleaseBuffer(buf)
	if err != nil {
		c.forget(m.Seq, ch)
		return nil, fmt.Errorf("ipc: write: %w", err)
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, ErrClosed
		}
		return resp, nil
	case <-ctx.Done():
		c.forget(m.Seq, ch)
		return nil, ctx.Err()
	}
}

// forget abandons a sequence number after a failed or cancelled Call.
// If the response already won the race into the channel, it is drained
// and returned to the pool so a late response never strands a pooled
// message (or, worse, a future recipient of its memory).
func (c *Client) forget(seq uint64, ch chan *protocol.Message) {
	c.mu.Lock()
	delete(c.pending, seq)
	c.mu.Unlock()
	select {
	case resp, ok := <-ch:
		if ok && resp != nil {
			protocol.ReleaseMessage(resp)
		}
	default:
	}
}

// Close tears the connection down; in-flight Calls fail with ErrClosed.
func (c *Client) Close() error {
	c.w.stop()
	err := c.conn.Close()
	<-c.done
	return err
}

// coalescer serializes and batches writes to one connection. Writers
// append under the mutex; the first writer to find no flush in progress
// becomes the leader and writes the accumulated buffer to the socket
// outside the lock, re-checking for bytes that arrived during the
// syscall. Two buffers alternate between the accumulating and the
// in-flight role, so steady-state writing allocates nothing.
type coalescer struct {
	dst io.Writer

	mu       sync.Mutex
	buf      []byte // accumulating
	spare    []byte // last flushed, reused for the next swap
	flushing bool
	batch    int // nested BeginBatch depth: defer flushing while > 0
	err      error
}

func newCoalescer(dst io.Writer) *coalescer {
	return &coalescer{dst: dst}
}

// write appends p and flushes unless another writer already took the
// leader role (or a batch is open) — in which case the bytes ride along
// with the leader's (or EndBatch's) flush.
func (w *coalescer) write(p []byte) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.buf = append(w.buf, p...)
	if w.flushing || w.batch > 0 {
		w.mu.Unlock()
		return nil
	}
	return w.flushLocked()
}

// flushLocked drains the buffer as the leader. Called with mu held;
// returns with mu released.
func (w *coalescer) flushLocked() error {
	w.flushing = true
	for w.err == nil && len(w.buf) > 0 && w.batch == 0 {
		out := w.buf
		w.buf = w.spare[:0]
		w.mu.Unlock()
		_, err := w.dst.Write(out)
		w.mu.Lock()
		w.spare = out[:0]
		if err != nil && w.err == nil {
			w.err = err
		}
	}
	w.flushing = false
	err := w.err
	w.mu.Unlock()
	return err
}

func (w *coalescer) beginBatch() {
	w.mu.Lock()
	w.batch++
	w.mu.Unlock()
}

func (w *coalescer) endBatch() error {
	w.mu.Lock()
	if w.batch > 0 {
		w.batch--
	}
	if w.batch > 0 || w.flushing || len(w.buf) == 0 {
		err := w.err
		w.mu.Unlock()
		return err
	}
	return w.flushLocked()
}

// stop marks the writer closed so late writes fail fast instead of
// accumulating against a dead connection.
func (w *coalescer) stop() {
	w.mu.Lock()
	if w.err == nil {
		w.err = ErrClosed
	}
	w.mu.Unlock()
}
