// Package ipc implements the UNIX-domain-socket transport ConVGPU uses
// between the host-side scheduler and the per-container wrapper modules
// (paper §III-A). The paper chose UNIX sockets because Docker blocks other
// host<->container IPC and TCP costs more; the scheduler creates one
// socket per container inside a shared volume directory.
//
// Framing is newline-delimited JSON (package protocol) with an
// optional binary fast path: a client that negotiates the binary codec
// (Client.NegotiateBinary, a TypeCodec probe answered at this layer)
// may send any message as a length-prefixed binary frame instead, and
// the server answers each request in the codec it arrived in. The two
// framings are distinguished per message by the first byte — a binary
// frame starts with 0xBF (any byte >= 0x80 is treated as an attempted
// binary frame and validated by the header checksum), a JSON line with
// '{' — so the connection never holds codec state that could desync:
// negotiation can only enable the client to send binary, never change
// how either side reads. Responses too large for a binary frame fall
// back to a JSON line per message.
//
// A connection multiplexes concurrent requests: responses are matched
// to requests by sequence number, so the scheduler can withhold the
// response to a suspended allocation while continuing to serve the
// container's other processes. The client side keeps its in-flight
// sequence numbers in a fixed ring (spilling to a map only while more
// than callRingSize calls are parked), so concurrent wrapper threads
// pipeline requests without serializing on one round trip or paying a
// channel allocation per call.
//
// # Hot-path memory discipline
//
// The transport threads pooled protocol.Message objects and pooled line
// buffers through its read and write loops, so a steady-state request
// cycle does near-zero heap allocation. That imposes ownership windows
// (see Handler and DESIGN.md §"Hot path"): a request message is valid
// only until Handle returns, and a response message passed to respond or
// Send is consumed by the transport.
//
// # Write coalescing
//
// Outbound writes go through a coalescing writer: the sender appends its
// line to a shared buffer and at most one goroutine per connection (the
// current "leader") performs the socket write. Senders arriving while
// the leader is inside the syscall buffer behind it and are flushed by
// the leader's next pass — a redistribution that admits N suspended
// tickets on one connection costs ~1 write syscall instead of N (the
// daemon brackets such bursts with BeginBatch/EndBatch). An uncontended
// send flushes immediately on the caller's goroutine, adding no latency.
package ipc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"convgpu/internal/protocol"
)

// MaxLine bounds a single message line. A message is a small JSON object;
// anything larger indicates a corrupt or hostile peer.
const MaxLine = 64 * 1024

// readBufSize sizes the per-connection read buffer. 4 KiB (the old
// size) fits any single message but forces extra read syscalls when
// responses burst after a redistribution; 16 KiB absorbs a burst of
// ~100 coalesced lines in one read.
const readBufSize = 16 * 1024

// ErrClosed is returned for operations on a closed client or server.
var ErrClosed = errors.New("ipc: connection closed")

// Handler reacts to requests arriving on a server connection.
//
// Handle must eventually call respond exactly once with the response
// message; it may do so after returning (that is how the scheduler
// suspends an allocation: it parks respond until memory is granted).
// Closed is invoked once when the connection drops, letting the scheduler
// release any requests still parked on it.
//
// Ownership: msg is pooled — it is valid only until Handle returns, and
// a handler that needs it afterwards (e.g. to serve it on another
// goroutine) must work on msg.Clone(). The message passed to respond is
// consumed: the transport writes it and returns it to the pool, so the
// caller must not touch it after respond returns.
type Handler interface {
	Handle(conn *ServerConn, msg *protocol.Message, respond func(*protocol.Message))
	Closed(conn *ServerConn)
}

// Server accepts connections on a UNIX socket and dispatches messages to
// a Handler.
type Server struct {
	ln      net.Listener
	handler Handler
	wg      sync.WaitGroup
	stats   atomic.Pointer[WireStats]

	mu     sync.Mutex
	conns  map[*ServerConn]struct{}
	closed bool
}

// SetWireStats installs a per-frame counter sink (shared across the
// server's connections; safe to install after Listen). A nil receiver
// or nil stats disables counting.
func (s *Server) SetWireStats(w *WireStats) {
	if s != nil {
		s.stats.Store(w)
	}
}

// Listen creates a UNIX socket at path and starts accepting connections.
func Listen(path string, h Handler) (*Server, error) {
	return ListenNet("unix", path, h)
}

// ListenNet is Listen over an arbitrary network ("unix", "tcp"). The
// paper chose UNIX sockets over TCP for complexity and performance
// reasons (§III-A); the TCP path exists so the transport ablation can
// measure that choice.
func ListenNet(network, addr string, h Handler) (*Server, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("ipc: listen %s %s: %w", network, addr, err)
	}
	return NewServer(ln, h), nil
}

// NewServer serves connections accepted from an established listener —
// the seam through which tests and the fault-injection harness
// substitute a wrapped net.Listener.
func NewServer(ln net.Listener, h Handler) *Server {
	s := &Server{ln: ln, handler: h, conns: make(map[*ServerConn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the socket path the server listens on.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		sc := &ServerConn{conn: c, server: s, w: newCoalescer(c)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sc.readLoop(s.handler)
			// A poisoned frame (oversized, unreadable) exits the loop with
			// the socket still open; close it so the peer sees a dead
			// connection instead of hanging on a response that will never
			// come.
			sc.conn.Close()
			s.mu.Lock()
			delete(s.conns, sc)
			s.mu.Unlock()
			s.handler.Closed(sc)
		}()
	}
}

// Close shuts the listener and all live connections down and waits for
// the handler goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*ServerConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	s.wg.Wait()
	return err
}

// ServerConn is one accepted connection. The scheduler attaches the
// owning container's identity to it via SetTag.
type ServerConn struct {
	conn   net.Conn
	server *Server
	w      *coalescer

	tagMu sync.Mutex
	tag   string
}

// SetTag associates an identity (the container ID) with the connection.
func (c *ServerConn) SetTag(tag string) {
	c.tagMu.Lock()
	defer c.tagMu.Unlock()
	c.tag = tag
}

// Tag returns the identity set by SetTag, or "".
func (c *ServerConn) Tag() string {
	c.tagMu.Lock()
	defer c.tagMu.Unlock()
	return c.tag
}

// Send writes a message on the connection as a JSON line. Sends are
// serialized by the coalescing writer, so delayed responses from parked
// allocation requests never interleave bytes with concurrent replies.
// The message is only read, never retained. (Responses to requests flow
// through respondOnce instead, which answers in the request's codec.)
func (c *ServerConn) Send(m *protocol.Message) error {
	return c.send(m, false)
}

// send writes m in the requested codec, falling back to a JSON line
// when the message has no binary form (or is too large for one) — the
// peer dispatches per frame, so mixing framings on one connection is
// always safe.
func (c *ServerConn) send(m *protocol.Message, binary bool) error {
	buf := protocol.AcquireBuffer()
	wroteBinary := false
	if binary {
		if out, ok := protocol.AppendEncodeBinary((*buf)[:0], m); ok {
			*buf = out
			wroteBinary = true
		}
	}
	if !wroteBinary {
		*buf = protocol.AppendEncode((*buf)[:0], m)
	}
	err := c.w.write(*buf)
	protocol.ReleaseBuffer(buf)
	c.server.stats.Load().countFrame(wroteBinary, true)
	return err
}

// BeginBatch suspends flushing so a burst of Sends — the responses a
// single scheduler Update releases — leaves in one socket write. Every
// BeginBatch must be paired with EndBatch.
func (c *ServerConn) BeginBatch() { c.w.beginBatch() }

// EndBatch re-enables flushing and flushes what the batch buffered.
func (c *ServerConn) EndBatch() error { return c.w.endBatch() }

func (c *ServerConn) readLoop(h Handler) {
	r := bufio.NewReaderSize(c.conn, readBufSize)
	var scratch []byte
	msg := protocol.AcquireMessage()
	defer protocol.ReleaseMessage(msg)
	for {
		f, err := readFrame(r, &scratch)
		if err != nil {
			// Includes a binary header that failed its checksum: the
			// length cannot be trusted, so the connection is condemned
			// rather than resynchronized (the caller closes the socket
			// and the peer's reconnect path takes over).
			return
		}
		stats := c.server.stats.Load()
		stats.countFrame(f.binary, false)
		if err := f.decodeInto(msg); err != nil {
			// A malformed message gets an error response echoing the
			// request's sequence number when we can still extract it —
			// from the validated binary header, or scanned out of the
			// bad JSON line — so the caller can correlate the failure
			// instead of timing out.
			stats.countFrameError()
			resp := protocol.AcquireMessage()
			resp.Type = protocol.TypeResponse
			resp.Seq = f.errorSeq()
			resp.Error = err.Error()
			c.send(resp, f.binary)
			protocol.ReleaseMessage(resp)
			continue
		}
		if msg.Type == protocol.TypeCodec {
			// Codec negotiation is transport business: answer here so
			// every server (control and per-container) supports it with
			// no handler involvement, echoing the token a client must
			// see before it starts sending binary frames.
			resp := protocol.AcquireMessage()
			resp.Type = protocol.TypeResponse
			resp.Seq = msg.Seq
			if msg.Data == protocol.BinaryCodecToken {
				resp.OK = true
				resp.Data = protocol.BinaryCodecToken
				stats.countNegotiation()
			} else {
				resp.Error = fmt.Sprintf("ipc: unknown codec %q", msg.Data)
			}
			c.send(resp, f.binary)
			protocol.ReleaseMessage(resp)
			msg.Reset()
			continue
		}
		respond := respondOnce(c, msg.Seq, f.binary)
		safeHandle(h, c, msg, respond)
		msg.Reset()
	}
}

// frame is one received message in either framing, pre-parsed just far
// enough to decode it and to echo its seq on failure.
type frame struct {
	binary  bool
	line    []byte // JSON line when !binary
	op      byte   // binary header fields when binary
	seq     uint64
	payload []byte
}

func (f *frame) decodeInto(m *protocol.Message) error {
	if f.binary {
		return protocol.DecodeBinaryInto(m, f.op, f.seq, f.payload)
	}
	return protocol.DecodeInto(m, f.line)
}

// errorSeq is the seq to echo on a response to an undecodable frame: a
// binary frame's header already survived its checksum, a JSON line gets
// the best-effort scan.
func (f *frame) errorSeq() uint64 {
	if f.binary {
		return f.seq
	}
	return protocol.ScanSeq(f.line)
}

// readFrame returns the next message in either framing. Dispatch is on
// the first byte: >= 0x80 is an (attempted) binary frame — real JSON
// output always starts with '{', and validating the full header by
// checksum means even a corrupted leading byte can never cause a
// misframed read — anything else is a JSON line. Returned slices alias
// the bufio buffer or *scratch and are valid only until the next call.
func readFrame(r *bufio.Reader, scratch *[]byte) (frame, error) {
	first, err := r.Peek(1)
	if err != nil {
		return frame{}, err
	}
	if first[0] < 0x80 {
		line, err := readLine(r, scratch)
		if err != nil {
			return frame{}, err
		}
		return frame{line: line}, nil
	}
	hdr, err := r.Peek(protocol.BinaryHeaderSize)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return frame{}, err
	}
	op, n, seq, err := protocol.ParseBinaryHeader(hdr)
	if err != nil {
		return frame{}, err
	}
	if _, err := r.Discard(protocol.BinaryHeaderSize); err != nil {
		return frame{}, err
	}
	if cap(*scratch) < n {
		*scratch = make([]byte, n)
	}
	buf := (*scratch)[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return frame{}, err
	}
	*scratch = buf
	return frame{binary: true, op: op, seq: seq, payload: buf}, nil
}

// safeHandle runs Handle with panic recovery: one request tripping a bug
// must not take the whole daemon down (and every other container's
// connection with it). The panicked request gets an error response
// through its respondOnce wrapper — a no-op if the handler responded
// before panicking — and the connection keeps serving.
func safeHandle(h Handler, c *ServerConn, msg *protocol.Message, respond func(*protocol.Message)) {
	defer func() {
		if r := recover(); r != nil {
			resp := protocol.AcquireMessage()
			resp.Error = fmt.Sprintf("ipc: handler panic: %v", r)
			respond(resp)
		}
	}()
	h.Handle(c, msg, respond)
}

// respondOnce wraps the connection's send so a handler calling respond
// more than once (a bug) cannot emit duplicate responses on the wire.
// It captures the sequence number and the request's codec by value: the
// request message itself is pooled and must not outlive Handle, and a
// response — even one released hours later by a redistribution — goes
// back in the codec its request arrived in.
func respondOnce(c *ServerConn, seq uint64, binary bool) func(*protocol.Message) {
	var once sync.Once
	return func(resp *protocol.Message) {
		once.Do(func() {
			resp.Seq = seq
			resp.Type = protocol.TypeResponse
			c.send(resp, binary)
		})
		// The transport consumes the response whether or not it was the
		// winning call; see Handler's ownership contract.
		protocol.ReleaseMessage(resp)
	}
}

// readLine returns the next newline-terminated line. The returned slice
// is valid only until the next call: it aliases either the bufio buffer
// (the common, allocation-free case) or *scratch, which is reused across
// calls for lines that straddle buffer boundaries.
func readLine(r *bufio.Reader, scratch *[]byte) ([]byte, error) {
	chunk, isPrefix, err := r.ReadLine()
	if err != nil {
		return nil, err
	}
	if !isPrefix {
		return chunk, nil // whole line already buffered: zero copies
	}
	buf := append((*scratch)[:0], chunk...)
	for isPrefix {
		chunk, isPrefix, err = r.ReadLine()
		if err != nil {
			return nil, err
		}
		buf = append(buf, chunk...)
		if len(buf) > MaxLine {
			return nil, fmt.Errorf("ipc: message exceeds %d bytes", MaxLine)
		}
	}
	*scratch = buf
	return buf, nil
}

// callRingSize is the number of in-flight calls the client tracks in
// its fixed ring (a power of two; sequence numbers index it by mask).
// The ring's channels are allocated once and reused, so a steady-state
// Call costs no channel allocation; calls beyond callRingSize in
// flight at once — e.g. a 65th suspended allocation parked on one
// connection — spill to a map and merely pay the old per-call cost.
const callRingSize = 64

// callSlot is one ring entry: the seq currently owning the slot (0 =
// free) and its reusable buffered response channel.
type callSlot struct {
	seq uint64
	ch  chan *protocol.Message
}

// Client is the wrapper-module side of a connection.
type Client struct {
	conn  net.Conn
	w     *coalescer
	stats atomic.Pointer[WireStats]

	// useBinary flips to true after a successful NegotiateBinary; it
	// only ever gates what this side sends — reads always dispatch per
	// frame — so there is no state to desync.
	useBinary atomic.Bool
	inFlight  atomic.Int64

	mu       sync.Mutex
	ring     [callRingSize]callSlot
	overflow map[uint64]chan *protocol.Message
	seq      uint64
	closed   bool
	readErr  error
	done     chan struct{}
}

// SetWireStats installs a per-frame counter sink. Nil disables.
func (c *Client) SetWireStats(w *WireStats) { c.stats.Store(w) }

// InFlight reports the number of Calls currently outstanding — the
// pipeline depth on this connection.
func (c *Client) InFlight() int64 { return c.inFlight.Load() }

// BinaryNegotiated reports whether this connection sends binary frames.
func (c *Client) BinaryNegotiated() bool { return c.useBinary.Load() }

// NegotiateBinary offers the binary fast-path codec to the server with
// a JSON-encoded TypeCodec probe. Only an affirmative echo of the token
// switches this client's sends to binary frames; any other outcome — an
// error response from an older server, a transport failure, a timeout
// from the caller's ctx — leaves the connection on JSON, so the
// handshake can only ever downgrade to the codec both sides speak.
// (Even a probe response lost in flight is safe: the server holds no
// per-connection codec state to get out of step with.)
func (c *Client) NegotiateBinary(ctx context.Context) (bool, error) {
	m := protocol.AcquireMessage()
	defer protocol.ReleaseMessage(m)
	m.Type = protocol.TypeCodec
	m.Data = protocol.BinaryCodecToken
	resp, err := c.Call(ctx, m)
	if err != nil {
		return false, err
	}
	ok := resp.OK && resp.Data == protocol.BinaryCodecToken
	protocol.ReleaseMessage(resp)
	if ok {
		c.useBinary.Store(true)
		c.stats.Load().countNegotiation()
	}
	return ok, nil
}

// Dial connects to the scheduler's UNIX socket at path.
func Dial(path string) (*Client, error) {
	return DialNet("unix", path)
}

// DialNet is Dial over an arbitrary network ("unix", "tcp").
func DialNet(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("ipc: dial %s %s: %w", network, addr, err)
	}
	return NewClient(conn), nil
}

// NewClient runs the wrapper-side protocol over an established
// connection — the seam the Reconnector and the fault-injection harness
// dial through.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn: conn,
		w:    newCoalescer(conn),
		done: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	r := bufio.NewReaderSize(c.conn, readBufSize)
	var scratch []byte
	var err error
	for {
		var f frame
		f, err = readFrame(r, &scratch)
		if err != nil {
			break // includes a condemned binary header (checksum)
		}
		stats := c.stats.Load()
		stats.countFrame(f.binary, false)
		msg := protocol.AcquireMessage()
		if derr := f.decodeInto(msg); derr != nil {
			protocol.ReleaseMessage(msg)
			stats.countFrameError()
			continue // skip unparseable frames; Call timeouts surface it
		}
		c.deliver(msg)
	}
	if err == io.EOF {
		err = ErrClosed
	}
	// The transport is unusable once the read loop exits (a response
	// could never be matched): poison the writer so late sends fail fast
	// and close the socket so the peer's read loop ends too.
	c.w.stop()
	c.conn.Close()
	c.mu.Lock()
	c.closed = true
	c.readErr = err
	for i := range c.ring {
		if c.ring[i].seq != 0 {
			close(c.ring[i].ch)
			c.ring[i].ch = nil // a closed channel must never be reused
			c.ring[i].seq = 0
		}
	}
	for seq, ch := range c.overflow {
		close(ch)
		delete(c.overflow, seq)
	}
	c.mu.Unlock()
	close(c.done)
}

// deliver hands a decoded response to the Call waiting on its seq.
// Delivery happens while holding mu: the slot lookup and the channel
// send are atomic with respect to forget, so a response racing a Call's
// context cancellation is either handed to the (buffered) channel —
// where the cancelled Call drains it — or dropped here. Either way this
// loop never blocks on a forgotten sequence. The ring slot stays owned
// (seq set) until the receiving Call clears it, so no new claimant can
// touch the channel while a response is in transit through it.
func (c *Client) deliver(msg *protocol.Message) {
	c.mu.Lock()
	var ch chan *protocol.Message
	if slot := &c.ring[msg.Seq&(callRingSize-1)]; slot.seq == msg.Seq {
		ch = slot.ch
	} else if och, ok := c.overflow[msg.Seq]; ok {
		ch = och
		delete(c.overflow, msg.Seq)
	}
	delivered := false
	if ch != nil {
		select {
		case ch <- msg:
			delivered = true
		default: // duplicate response for a seq: drop it
		}
	}
	c.mu.Unlock()
	if !delivered {
		protocol.ReleaseMessage(msg) // unknown/forgotten seq: drop, don't block
	}
}

// Call sends m (assigning a fresh sequence number) and blocks until the
// matching response arrives, the context is done, or the connection
// fails. A suspended allocation simply blocks here — that is the
// mechanism by which ConVGPU pauses a container's allocation call.
// Concurrent Calls pipeline: each claims its own ring slot (or spills
// to the overflow map), so issuing a request never waits on another
// call's round trip.
//
// The returned response is owned by the caller; callers on an
// allocation hot path may hand it back via protocol.ReleaseMessage once
// they are done reading it.
func (c *Client) Call(ctx context.Context, m *protocol.Message) (*protocol.Message, error) {
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	c.seq++
	seq := c.seq
	m.Seq = seq
	var ch chan *protocol.Message
	ringSlot := false
	if slot := &c.ring[seq&(callRingSize-1)]; slot.seq == 0 {
		if slot.ch == nil {
			slot.ch = make(chan *protocol.Message, 1)
		} else {
			// A duplicate response delivered between a previous owner's
			// receive and its slot release can leave a stale message in
			// the reused channel; drain it so this call cannot read it.
			select {
			case stale := <-slot.ch:
				protocol.ReleaseMessage(stale)
			default:
			}
		}
		slot.seq = seq
		ch = slot.ch
		ringSlot = true
	} else {
		// The slot is held by an older in-flight call (a suspended
		// allocation can park a seq indefinitely): spill to the map.
		ch = make(chan *protocol.Message, 1)
		if c.overflow == nil {
			c.overflow = make(map[uint64]chan *protocol.Message)
		}
		c.overflow[seq] = ch
	}
	c.mu.Unlock()
	c.inFlight.Add(1)
	defer c.inFlight.Add(-1)

	buf := protocol.AcquireBuffer()
	wroteBinary := false
	if c.useBinary.Load() {
		if out, ok := protocol.AppendEncodeBinary((*buf)[:0], m); ok {
			*buf = out
			wroteBinary = true
		}
	}
	if !wroteBinary {
		*buf = protocol.AppendEncode((*buf)[:0], m)
	}
	err := c.w.write(*buf)
	protocol.ReleaseBuffer(buf)
	c.stats.Load().countFrame(wroteBinary, true)
	if err != nil {
		c.forget(seq, ch, ringSlot)
		return nil, fmt.Errorf("ipc: write: %w", err)
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, ErrClosed
		}
		if ringSlot {
			c.releaseSlot(seq)
		}
		return resp, nil
	case <-ctx.Done():
		c.forget(seq, ch, ringSlot)
		return nil, ctx.Err()
	}
}

// releaseSlot frees a ring slot after its response was received. The
// slot stays owned from claim to here, so the in-transit response can
// never be raced by a new claimant of the same slot.
func (c *Client) releaseSlot(seq uint64) {
	c.mu.Lock()
	if slot := &c.ring[seq&(callRingSize-1)]; slot.seq == seq {
		slot.seq = 0
	}
	c.mu.Unlock()
}

// forget abandons a sequence number after a failed or cancelled Call.
// If the response already won the race into the channel, it is drained
// and returned to the pool — under mu, in the same critical section
// that frees the ring slot — so a late response never strands a pooled
// message or reaches the slot's next occupant.
func (c *Client) forget(seq uint64, ch chan *protocol.Message, ringSlot bool) {
	c.mu.Lock()
	if ringSlot {
		if slot := &c.ring[seq&(callRingSize-1)]; slot.seq == seq {
			slot.seq = 0
		}
	} else {
		delete(c.overflow, seq)
	}
	select {
	case resp, ok := <-ch:
		if ok && resp != nil {
			protocol.ReleaseMessage(resp)
		}
	default:
	}
	c.mu.Unlock()
}

// Close tears the connection down; in-flight Calls fail with ErrClosed.
func (c *Client) Close() error {
	c.w.stop()
	err := c.conn.Close()
	<-c.done
	return err
}

// coalescer serializes and batches writes to one connection. Writers
// append under the mutex; the first writer to find no flush in progress
// becomes the leader and writes the accumulated buffer to the socket
// outside the lock, re-checking for bytes that arrived during the
// syscall. Two buffers alternate between the accumulating and the
// in-flight role, so steady-state writing allocates nothing.
type coalescer struct {
	dst io.Writer

	mu       sync.Mutex
	buf      []byte // accumulating
	spare    []byte // last flushed, reused for the next swap
	flushing bool
	batch    int // nested BeginBatch depth: defer flushing while > 0
	err      error
}

func newCoalescer(dst io.Writer) *coalescer {
	return &coalescer{dst: dst}
}

// write appends p and flushes unless another writer already took the
// leader role (or a batch is open) — in which case the bytes ride along
// with the leader's (or EndBatch's) flush.
func (w *coalescer) write(p []byte) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.buf = append(w.buf, p...)
	if w.flushing || w.batch > 0 {
		w.mu.Unlock()
		return nil
	}
	return w.flushLocked()
}

// flushLocked drains the buffer as the leader. Called with mu held;
// returns with mu released.
func (w *coalescer) flushLocked() error {
	w.flushing = true
	for w.err == nil && len(w.buf) > 0 && w.batch == 0 {
		out := w.buf
		w.buf = w.spare[:0]
		w.mu.Unlock()
		_, err := w.dst.Write(out)
		w.mu.Lock()
		w.spare = out[:0]
		if err != nil && w.err == nil {
			w.err = err
		}
	}
	w.flushing = false
	err := w.err
	w.mu.Unlock()
	return err
}

func (w *coalescer) beginBatch() {
	w.mu.Lock()
	w.batch++
	w.mu.Unlock()
}

func (w *coalescer) endBatch() error {
	w.mu.Lock()
	if w.batch > 0 {
		w.batch--
	}
	if w.batch > 0 || w.flushing || len(w.buf) == 0 {
		err := w.err
		w.mu.Unlock()
		return err
	}
	return w.flushLocked()
}

// stop marks the writer closed so late writes fail fast instead of
// accumulating against a dead connection.
func (w *coalescer) stop() {
	w.mu.Lock()
	if w.err == nil {
		w.err = ErrClosed
	}
	w.mu.Unlock()
}
