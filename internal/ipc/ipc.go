// Package ipc implements the UNIX-domain-socket transport ConVGPU uses
// between the host-side scheduler and the per-container wrapper modules
// (paper §III-A). The paper chose UNIX sockets because Docker blocks other
// host<->container IPC and TCP costs more; the scheduler creates one
// socket per container inside a shared volume directory.
//
// Framing is newline-delimited JSON (package protocol). A connection
// multiplexes concurrent requests: responses are matched to requests by
// sequence number, so the scheduler can withhold the response to a
// suspended allocation while continuing to serve the container's other
// processes.
package ipc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"convgpu/internal/protocol"
)

// MaxLine bounds a single message line. A message is a small JSON object;
// anything larger indicates a corrupt or hostile peer.
const MaxLine = 64 * 1024

// ErrClosed is returned for operations on a closed client or server.
var ErrClosed = errors.New("ipc: connection closed")

// Handler reacts to requests arriving on a server connection.
//
// Handle must eventually call respond exactly once with the response
// message; it may do so after returning (that is how the scheduler
// suspends an allocation: it parks respond until memory is granted).
// Closed is invoked once when the connection drops, letting the scheduler
// release any requests still parked on it.
type Handler interface {
	Handle(conn *ServerConn, msg *protocol.Message, respond func(*protocol.Message))
	Closed(conn *ServerConn)
}

// Server accepts connections on a UNIX socket and dispatches messages to
// a Handler.
type Server struct {
	ln      net.Listener
	handler Handler
	wg      sync.WaitGroup

	mu     sync.Mutex
	conns  map[*ServerConn]struct{}
	closed bool
}

// Listen creates a UNIX socket at path and starts accepting connections.
func Listen(path string, h Handler) (*Server, error) {
	return ListenNet("unix", path, h)
}

// ListenNet is Listen over an arbitrary network ("unix", "tcp"). The
// paper chose UNIX sockets over TCP for complexity and performance
// reasons (§III-A); the TCP path exists so the transport ablation can
// measure that choice.
func ListenNet(network, addr string, h Handler) (*Server, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("ipc: listen %s %s: %w", network, addr, err)
	}
	s := &Server{ln: ln, handler: h, conns: make(map[*ServerConn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the socket path the server listens on.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		sc := &ServerConn{conn: c, server: s}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sc.readLoop(s.handler)
			s.mu.Lock()
			delete(s.conns, sc)
			s.mu.Unlock()
			s.handler.Closed(sc)
		}()
	}
}

// Close shuts the listener and all live connections down and waits for
// the handler goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*ServerConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	s.wg.Wait()
	return err
}

// ServerConn is one accepted connection. The scheduler attaches the
// owning container's identity to it via SetTag.
type ServerConn struct {
	conn   net.Conn
	server *Server

	writeMu sync.Mutex

	tagMu sync.Mutex
	tag   string
}

// SetTag associates an identity (the container ID) with the connection.
func (c *ServerConn) SetTag(tag string) {
	c.tagMu.Lock()
	defer c.tagMu.Unlock()
	c.tag = tag
}

// Tag returns the identity set by SetTag, or "".
func (c *ServerConn) Tag() string {
	c.tagMu.Lock()
	defer c.tagMu.Unlock()
	return c.tag
}

// Send writes a message on the connection. Sends are serialized, so
// delayed responses from parked allocation requests never interleave
// bytes with concurrent replies.
func (c *ServerConn) Send(m *protocol.Message) error {
	b, err := protocol.Encode(m)
	if err != nil {
		return err
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	_, err = c.conn.Write(b)
	return err
}

func (c *ServerConn) readLoop(h Handler) {
	r := bufio.NewReaderSize(c.conn, 4096)
	for {
		line, err := readLine(r)
		if err != nil {
			return
		}
		msg, err := protocol.Decode(line)
		if err != nil {
			// A malformed message gets an error response when we can
			// still extract a sequence number; otherwise the connection
			// is dropped to protect the scheduler.
			c.Send(&protocol.Message{Type: protocol.TypeResponse, OK: false, Error: err.Error()})
			continue
		}
		respond := respondOnce(c, msg)
		h.Handle(c, msg, respond)
	}
}

// respondOnce wraps ServerConn.Send so a handler calling respond more
// than once (a bug) cannot emit duplicate responses on the wire.
func respondOnce(c *ServerConn, req *protocol.Message) func(*protocol.Message) {
	var once sync.Once
	return func(resp *protocol.Message) {
		once.Do(func() {
			resp.Seq = req.Seq
			resp.Type = protocol.TypeResponse
			c.Send(resp)
		})
	}
}

func readLine(r *bufio.Reader) ([]byte, error) {
	var buf []byte
	for {
		chunk, isPrefix, err := r.ReadLine()
		if err != nil {
			return nil, err
		}
		buf = append(buf, chunk...)
		if len(buf) > MaxLine {
			return nil, fmt.Errorf("ipc: message exceeds %d bytes", MaxLine)
		}
		if !isPrefix {
			return buf, nil
		}
	}
}

// Client is the wrapper-module side of a connection.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan *protocol.Message
	seq     uint64
	closed  bool
	readErr error
	done    chan struct{}
}

// Dial connects to the scheduler's UNIX socket at path.
func Dial(path string) (*Client, error) {
	return DialNet("unix", path)
}

// DialNet is Dial over an arbitrary network ("unix", "tcp").
func DialNet(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("ipc: dial %s %s: %w", network, addr, err)
	}
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan *protocol.Message),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	r := bufio.NewReaderSize(c.conn, 4096)
	var err error
	for {
		var line []byte
		line, err = readLine(r)
		if err != nil {
			break
		}
		msg, derr := protocol.Decode(line)
		if derr != nil {
			continue // skip unparseable frames; Call timeouts surface it
		}
		c.mu.Lock()
		ch, ok := c.pending[msg.Seq]
		if ok {
			delete(c.pending, msg.Seq)
		}
		c.mu.Unlock()
		if ok {
			ch <- msg
		}
	}
	if err == io.EOF {
		err = ErrClosed
	}
	c.mu.Lock()
	c.closed = true
	c.readErr = err
	for seq, ch := range c.pending {
		close(ch)
		delete(c.pending, seq)
	}
	c.mu.Unlock()
	close(c.done)
}

// Call sends m (assigning a fresh sequence number) and blocks until the
// matching response arrives, the context is done, or the connection
// fails. A suspended allocation simply blocks here — that is the
// mechanism by which ConVGPU pauses a container's allocation call.
func (c *Client) Call(ctx context.Context, m *protocol.Message) (*protocol.Message, error) {
	ch := make(chan *protocol.Message, 1)
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	c.seq++
	m.Seq = c.seq
	c.pending[m.Seq] = ch
	c.mu.Unlock()

	b, err := protocol.Encode(m)
	if err != nil {
		c.forget(m.Seq)
		return nil, err
	}
	c.writeMu.Lock()
	_, err = c.conn.Write(b)
	c.writeMu.Unlock()
	if err != nil {
		c.forget(m.Seq)
		return nil, fmt.Errorf("ipc: write: %w", err)
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, ErrClosed
		}
		return resp, nil
	case <-ctx.Done():
		c.forget(m.Seq)
		return nil, ctx.Err()
	}
}

func (c *Client) forget(seq uint64) {
	c.mu.Lock()
	delete(c.pending, seq)
	c.mu.Unlock()
}

// Close tears the connection down; in-flight Calls fail with ErrClosed.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.done
	return err
}
