package ipc

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"convgpu/internal/leak"
	"convgpu/internal/protocol"
)

func waitClosed(t *testing.T, h *echoHandler) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if atomic.LoadInt32(&h.closed) > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("handler.Closed never fired")
}

// TestOversizedFrameKillsServerConn: a frame above MaxLine must end the
// connection cleanly — Closed fires, the socket actually closes (the
// peer sees EOF instead of hanging), and no goroutine is left behind.
func TestOversizedFrameKillsServerConn(t *testing.T) {
	leak.Check(t)
	h := &echoHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("unix", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	junk := make([]byte, MaxLine+4096)
	for i := range junk {
		junk[i] = 'a'
	}
	junk[len(junk)-1] = '\n'
	if _, err := conn.Write(junk); err != nil {
		t.Fatal(err)
	}
	waitClosed(t, h)
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server left the poisoned connection open")
	}
	conn.Close()
	srv.Close()
}

// TestTruncatedFrameServer: a connection dying mid-line must not wedge
// the server — Closed fires and nothing leaks.
func TestTruncatedFrameServer(t *testing.T) {
	leak.Check(t)
	h := &echoHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("unix", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte(`{"t":"alloc","seq":1,`)); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitClosed(t, h)
	srv.Close()
}

// TestOversizedFrameKillsClient: the client read loop hitting an
// oversized frame must fail in-flight Calls and release the socket.
func TestOversizedFrameKillsClient(t *testing.T) {
	leak.Check(t)
	ln, err := net.Listen("unix", sockPath(t))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	served := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		junk := make([]byte, MaxLine+4096)
		for i := range junk {
			junk[i] = 'a'
		}
		junk[len(junk)-1] = '\n'
		c.Write(junk)
		served <- c
	}()

	cli, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if _, err := cli.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo}); err == nil {
		t.Fatal("Call survived an oversized response frame")
	} else if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Call timed out instead of failing fast: %v", err)
	}
	srvConn := <-served
	srvConn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := srvConn.Read(make([]byte, 64)); !isConnDead(err) {
		// first read may still see the request line; the second must fail
		if _, err := srvConn.Read(make([]byte, 64)); !isConnDead(err) {
			t.Fatalf("client left its dead socket open: %v", err)
		}
	}
	srvConn.Close()
	cli.Close()
	ln.Close()
}

func isConnDead(err error) bool {
	return err != nil && !strings.Contains(err.Error(), "timeout")
}

// TestTruncatedFrameClient: the server dying mid-response line must
// fail the in-flight Call with a connection error, not a hang.
func TestTruncatedFrameClient(t *testing.T) {
	leak.Check(t)
	ln, err := net.Listen("unix", sockPath(t))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		c.Write([]byte(`{"t":"resp","seq":1,`)) // truncated: no newline, then close
		c.Close()
	}()

	cli, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if _, err := cli.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Call err = %v, want ErrClosed", err)
	}
	cli.Close()
	ln.Close()
}

// panicHandler panics on abort requests and serves everything else.
type panicHandler struct{}

func (panicHandler) Handle(c *ServerConn, m *protocol.Message, respond func(*protocol.Message)) {
	if m.Type == protocol.TypeAbort {
		panic("injected handler bug")
	}
	respond(&protocol.Message{OK: true})
}
func (panicHandler) Closed(*ServerConn) {}

// TestHandlerPanicIsRecovered: a panicking handler yields an error
// response on that request and the connection keeps serving others.
func TestHandlerPanicIsRecovered(t *testing.T) {
	srv, err := Listen(sockPath(t), panicHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	resp, err := cli.Call(ctx, &protocol.Message{Type: protocol.TypeAbort, PID: 1, Size: 1})
	if err != nil {
		t.Fatalf("transport error instead of error response: %v", err)
	}
	if !strings.Contains(resp.Error, "panic") {
		t.Fatalf("resp = %+v, want a panic error", resp)
	}
	// The connection survived: a normal request still round-trips.
	resp, err = cli.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo})
	if err != nil || !resp.OK {
		t.Fatalf("post-panic call: %+v %v", resp, err)
	}
}

// TestReconnectorRedialsWithBackoff: dial failures are retried on the
// backoff schedule until one succeeds, transparently to the caller.
func TestReconnectorRedialsWithBackoff(t *testing.T) {
	h := &echoHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var attempts int32
	r := NewReconnector(ReconnectConfig{
		Dial: func() (net.Conn, error) {
			if atomic.AddInt32(&attempts, 1) <= 2 {
				return nil, errors.New("injected dial failure")
			}
			return net.Dial("unix", srv.Addr())
		},
		Backoff: Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond},
		Seed:    1,
	})
	defer r.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	resp, err := r.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo, Size: 7})
	if err != nil || resp.Free != 7 {
		t.Fatalf("call through reconnector: %+v %v", resp, err)
	}
	if got := atomic.LoadInt32(&attempts); got != 3 {
		t.Fatalf("dial attempts = %d, want 3", got)
	}
	if r.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", r.Generation())
	}
}

// TestReconnectorMaxAttempts: a bounded dial budget surfaces the last
// error instead of retrying forever.
func TestReconnectorMaxAttempts(t *testing.T) {
	var attempts int32
	r := NewReconnector(ReconnectConfig{
		Dial: func() (net.Conn, error) {
			atomic.AddInt32(&attempts, 1)
			return nil, errors.New("injected dial failure")
		},
		Backoff:     Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		MaxAttempts: 3,
		Seed:        1,
	})
	defer r.Close()
	_, err := r.Call(context.Background(), &protocol.Message{Type: protocol.TypeMemInfo})
	if err == nil || !strings.Contains(err.Error(), "injected dial failure") {
		t.Fatalf("err = %v", err)
	}
	if got := atomic.LoadInt32(&attempts); got != 3 {
		t.Fatalf("dial attempts = %d, want 3", got)
	}
}

// TestReconnectorSurvivesServerRestart: the failed call after the
// server dies is surfaced (never silently retried — allocations are
// not idempotent), and the next call redials the restarted server,
// running the OnReconnect hook again.
func TestReconnectorSurvivesServerRestart(t *testing.T) {
	path := sockPath(t)
	h := &echoHandler{}
	srv, err := Listen(path, h)
	if err != nil {
		t.Fatal(err)
	}

	var hooks int32
	r := NewReconnector(ReconnectConfig{
		Network: "unix",
		Addr:    path,
		Backoff: Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond},
		OnReconnect: func(c *Client) error {
			atomic.AddInt32(&hooks, 1)
			return nil
		},
		Seed: 1,
	})
	defer r.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := r.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo}); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	// The call that observes the dead connection fails — fail-closed.
	if _, err := r.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo}); err == nil {
		t.Fatal("call through dead connection succeeded")
	}

	srv2, err := Listen(path, h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	// The next call redials (possibly needing a few backoff rounds while
	// the listener comes up) and succeeds.
	var resp *protocol.Message
	for i := 0; i < 50; i++ {
		resp, err = r.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo, Size: 9})
		if err == nil {
			break
		}
	}
	if err != nil || resp.Free != 9 {
		t.Fatalf("call after restart: %+v %v", resp, err)
	}
	if got := atomic.LoadInt32(&hooks); got < 2 {
		t.Fatalf("OnReconnect ran %d times, want ≥2", got)
	}
	if r.Generation() < 2 {
		t.Fatalf("generation = %d, want ≥2", r.Generation())
	}
}

// TestReconnectorCallTimeout: CallTimeout bounds ordinary requests, but
// allocation requests are exempt — a suspended allocation must be able
// to outwait any per-call deadline.
func TestReconnectorCallTimeout(t *testing.T) {
	h := &parkHandler{parkAll: true}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const callTimeout = 60 * time.Millisecond
	r := NewReconnector(ReconnectConfig{
		Network:     "unix",
		Addr:        srv.Addr(),
		Backoff:     Backoff{Base: time.Millisecond},
		CallTimeout: callTimeout,
		Seed:        1,
	})
	defer r.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if _, err := r.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("meminfo err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}

	// An alloc parked well past CallTimeout still completes once granted.
	done := make(chan error, 1)
	go func() {
		resp, err := r.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: 64})
		if err == nil && resp.Decision != protocol.DecisionAccept {
			err = errors.New("unexpected decision")
		}
		done <- err
	}()
	time.Sleep(3 * callTimeout) // suspended far beyond the per-call bound
	for h.Release() == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatalf("suspended alloc: %v", err)
	}
}
