package ipc

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"convgpu/internal/leak"
	"convgpu/internal/protocol"
)

// TestNegotiateBinarySwitchesCodec: after the handshake, requests and
// responses travel as binary frames, and the wire counters on both
// sides agree about it.
func TestNegotiateBinarySwitchesCodec(t *testing.T) {
	h := &echoHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srvStats := &WireStats{}
	srv.SetWireStats(srvStats)

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cliStats := &WireStats{}
	cli.SetWireStats(cliStats)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if cli.BinaryNegotiated() {
		t.Fatal("client claims binary before negotiating")
	}
	ok, err := cli.NegotiateBinary(ctx)
	if err != nil || !ok {
		t.Fatalf("NegotiateBinary = %v, %v", ok, err)
	}
	if !cli.BinaryNegotiated() {
		t.Fatal("BinaryNegotiated false after successful handshake")
	}

	resp, err := cli.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo, Size: 77})
	if err != nil || !resp.OK || resp.Free != 77 {
		t.Fatalf("binary call: %+v %v", resp, err)
	}

	// The probe travelled as JSON; the meminfo round trip as binary.
	if got := cliStats.Frames(true, true); got != 1 {
		t.Errorf("client binary frames out = %d, want 1", got)
	}
	if got := cliStats.Frames(true, false); got != 1 {
		t.Errorf("client binary frames in = %d, want 1", got)
	}
	if got := cliStats.Frames(false, true); got != 1 {
		t.Errorf("client json frames out = %d, want 1 (the probe)", got)
	}
	if srvStats.Frames(true, false) != 1 || srvStats.Frames(true, true) != 1 {
		t.Errorf("server binary in/out = %d/%d, want 1/1",
			srvStats.Frames(true, false), srvStats.Frames(true, true))
	}
	if srvStats.Negotiations() != 1 || cliStats.Negotiations() != 1 {
		t.Errorf("negotiations server/client = %d/%d, want 1/1",
			srvStats.Negotiations(), cliStats.Negotiations())
	}
}

// TestNegotiateUnknownCodecStaysJSON: a TypeCodec probe carrying a
// token the server does not speak gets an error response and the
// client must keep sending JSON — the handshake can only downgrade.
func TestNegotiateUnknownCodecStaysJSON(t *testing.T) {
	h := &echoHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	resp, err := cli.Call(ctx, &protocol.Message{Type: protocol.TypeCodec, Data: "bogus9"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Error == "" {
		t.Fatalf("unknown codec accepted: %+v", resp)
	}
	if cli.BinaryNegotiated() {
		t.Fatal("client switched to binary on a rejected token")
	}
	// The connection is still perfectly usable on JSON.
	resp, err = cli.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo, Size: 5})
	if err != nil || resp.Free != 5 {
		t.Fatalf("post-rejection call: %+v %v", resp, err)
	}
}

// TestSuspendedBinaryAllocAnsweredInBinary: a parked allocation's
// response — released long after Handle returned — still goes out in
// the codec its request arrived in.
func TestSuspendedBinaryAllocAnsweredInBinary(t *testing.T) {
	h := &parkHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cliStats := &WireStats{}
	cli.SetWireStats(cliStats)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if ok, err := cli.NegotiateBinary(ctx); err != nil || !ok {
		t.Fatalf("negotiate: %v %v", ok, err)
	}

	done := make(chan error, 1)
	go func() {
		resp, err := cli.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: 64, API: "cudaMalloc"})
		if err == nil && resp.Decision != protocol.DecisionAccept {
			err = fmt.Errorf("decision = %q", resp.Decision)
		}
		done <- err
	}()
	deadline := time.Now().Add(3 * time.Second)
	for h.Release() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("alloc never parked")
		}
		time.Sleep(time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatalf("suspended alloc: %v", err)
	}
	// Probe response was JSON; the (delayed) alloc response binary.
	if got := cliStats.Frames(true, false); got != 1 {
		t.Errorf("binary frames in = %d, want 1 (the parked response)", got)
	}
}

// TestMixedFramingOneConnection: framing is dispatched per message by
// the first byte, so JSON lines sent before the handshake and binary
// frames after it interleave freely on one connection.
func TestMixedFramingOneConnection(t *testing.T) {
	h := &echoHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srvStats := &WireStats{}
	srv.SetWireStats(srvStats)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if resp, err := cli.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo, Size: 1}); err != nil || resp.Free != 1 {
		t.Fatalf("json call: %+v %v", resp, err)
	}
	if ok, err := cli.NegotiateBinary(ctx); err != nil || !ok {
		t.Fatalf("negotiate: %v %v", ok, err)
	}
	if resp, err := cli.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo, Size: 2}); err != nil || resp.Free != 2 {
		t.Fatalf("binary call: %+v %v", resp, err)
	}
	if got := srvStats.Frames(false, false); got != 2 { // meminfo + probe
		t.Errorf("server json frames in = %d, want 2", got)
	}
	if got := srvStats.Frames(true, false); got != 1 {
		t.Errorf("server binary frames in = %d, want 1", got)
	}
}

// TestBinaryMalformedPayloadEchoesSeq: a binary frame whose header
// survives its checksum but whose payload does not decode gets an
// error response echoing the true sequence number, in binary, and the
// connection keeps serving — the exact contract the JSON path has for
// a mangled line with a scannable seq.
func TestBinaryMalformedPayloadEchoesSeq(t *testing.T) {
	h := &echoHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("unix", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const seq = 0xDEADBEEF
	frame, ok := protocol.AppendEncodeBinary(nil, &protocol.Message{
		Type: protocol.TypeAlloc, Seq: seq, PID: 7, Size: 64, API: "cudaMalloc"})
	if !ok {
		t.Fatal("sample message has no binary form")
	}
	frame[protocol.BinaryHeaderSize] = 200 // unknown field tag; header untouched
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	readBinaryResponse := func() *protocol.Message {
		t.Helper()
		hdr := make([]byte, protocol.BinaryHeaderSize)
		if _, err := io.ReadFull(conn, hdr); err != nil {
			t.Fatalf("reading response header: %v", err)
		}
		op, n, gotSeq, err := protocol.ParseBinaryHeader(hdr)
		if err != nil {
			t.Fatalf("response header: %v", err)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			t.Fatal(err)
		}
		m := &protocol.Message{}
		if err := protocol.DecodeBinaryInto(m, op, gotSeq, payload); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
		return m
	}
	m := readBinaryResponse()
	if m.Seq != seq || m.Error == "" {
		t.Fatalf("error response = %+v, want seq %#x with error text", m, uint64(seq))
	}

	// The connection survived the bad payload: a clean frame round-trips.
	frame2, _ := protocol.AppendEncodeBinary(nil, &protocol.Message{Type: protocol.TypeMemInfo, Seq: 9, Size: 3})
	if _, err := conn.Write(frame2); err != nil {
		t.Fatal(err)
	}
	if m := readBinaryResponse(); m.Seq != 9 || m.Free != 3 {
		t.Fatalf("post-error call = %+v", m)
	}
}

// TestCorruptBinaryHeaderCondemnsConnection: a header that fails its
// checksum means the length cannot be trusted, so the server must drop
// the connection rather than resynchronize — the peer sees EOF, never
// a hang or a misframed read.
func TestCorruptBinaryHeaderCondemnsConnection(t *testing.T) {
	leak.Check(t)
	h := &echoHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("unix", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	frame, _ := protocol.AppendEncodeBinary(nil, &protocol.Message{Type: protocol.TypeMemInfo, Seq: 4})
	frame[0] ^= 0x20 // 0xBF -> 0x9F: still >= 0x80, checksum now wrong
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	waitClosed(t, h)
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept a condemned connection open")
	}
}

// TestPipelineBeyondRingDepth: more concurrent in-flight calls than
// the ring holds — the overflow path — all complete once released, and
// InFlight tracks the pipeline depth.
func TestPipelineBeyondRingDepth(t *testing.T) {
	h := &parkHandler{parkAll: true}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if ok, err := cli.NegotiateBinary(ctx); err != nil || !ok {
		t.Fatalf("negotiate: %v %v", ok, err)
	}

	const depth = callRingSize + 36
	var wg sync.WaitGroup
	errs := make(chan error, depth)
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := cli.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: 64, API: "cudaMalloc"})
			if err != nil {
				errs <- err
				return
			}
			if resp.Decision != protocol.DecisionAccept {
				errs <- fmt.Errorf("decision = %q", resp.Decision)
			}
			protocol.ReleaseMessage(resp)
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	released := 0
	for released < depth {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d calls parked", released, depth)
		}
		if released == 0 && cli.InFlight() < depth {
			time.Sleep(time.Millisecond)
			continue // let the full pipeline build up before releasing
		}
		released += h.Release()
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := cli.InFlight(); got != 0 {
		t.Errorf("InFlight after drain = %d, want 0", got)
	}
}

// TestReconnectorNegotiatesByDefault: every connection the Reconnector
// publishes speaks binary unless DisableBinary or CONVGPU_WIRE_JSON
// opts out.
func TestReconnectorNegotiatesByDefault(t *testing.T) {
	h := &echoHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()

	wire := &WireStats{}
	r := NewReconnector(ReconnectConfig{
		Network: "unix", Addr: srv.Addr(),
		Backoff: Backoff{Base: time.Millisecond}, Seed: 1,
		Wire: wire,
	})
	defer r.Close()
	c, err := r.Connect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !c.BinaryNegotiated() {
		t.Fatal("reconnector did not negotiate binary by default")
	}
	if wire.Negotiations() != 1 {
		t.Errorf("wire negotiations = %d, want 1", wire.Negotiations())
	}
	if _, err := r.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo}); err != nil {
		t.Fatal(err)
	}
	if wire.Frames(true, true) == 0 {
		t.Error("no binary frames counted through the reconnector's wire stats")
	}
	if r.InFlight() != 0 {
		t.Errorf("InFlight = %d, want 0", r.InFlight())
	}

	r2 := NewReconnector(ReconnectConfig{
		Network: "unix", Addr: srv.Addr(),
		Backoff: Backoff{Base: time.Millisecond}, Seed: 1,
		DisableBinary: true,
	})
	defer r2.Close()
	if c, err := r2.Connect(ctx); err != nil {
		t.Fatal(err)
	} else if c.BinaryNegotiated() {
		t.Fatal("DisableBinary connection negotiated binary anyway")
	}
}

// TestReconnectorForceJSONEnv: CONVGPU_WIRE_JSON pins the whole
// process to the JSON codec — the debug escape hatch.
func TestReconnectorForceJSONEnv(t *testing.T) {
	t.Setenv("CONVGPU_WIRE_JSON", "1")
	h := &echoHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	r := NewReconnector(ReconnectConfig{
		Network: "unix", Addr: srv.Addr(),
		Backoff: Backoff{Base: time.Millisecond}, Seed: 1,
	})
	defer r.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	c, err := r.Connect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c.BinaryNegotiated() {
		t.Fatal("CONVGPU_WIRE_JSON did not force the JSON codec")
	}
	if resp, err := r.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo, Size: 6}); err != nil || resp.Free != 6 {
		t.Fatalf("forced-JSON call: %+v %v", resp, err)
	}
}
