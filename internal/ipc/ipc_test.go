package ipc

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"convgpu/internal/protocol"
)

// echoHandler responds immediately, echoing the request's Size.
type echoHandler struct {
	closed int32
}

func (h *echoHandler) Handle(conn *ServerConn, msg *protocol.Message, respond func(*protocol.Message)) {
	respond(&protocol.Message{OK: true, Free: msg.Size})
}

func (h *echoHandler) Closed(conn *ServerConn) { atomic.AddInt32(&h.closed, 1) }

// parkHandler withholds responses until Release is called — the same
// mechanism the scheduler uses to suspend an allocation.
type parkHandler struct {
	parkAll bool // park every request, not just allocations
	mu      sync.Mutex
	parked  []func(*protocol.Message)
}

func (h *parkHandler) Handle(conn *ServerConn, msg *protocol.Message, respond func(*protocol.Message)) {
	if h.parkAll || msg.Type == protocol.TypeAlloc {
		h.mu.Lock()
		h.parked = append(h.parked, respond)
		h.mu.Unlock()
		return
	}
	respond(&protocol.Message{OK: true})
}

func (h *parkHandler) Closed(conn *ServerConn) {}

func (h *parkHandler) Release() int {
	h.mu.Lock()
	parked := h.parked
	h.parked = nil
	h.mu.Unlock()
	for _, r := range parked {
		r(&protocol.Message{OK: true, Decision: protocol.DecisionAccept})
	}
	return len(parked)
}

func sockPath(t *testing.T) string {
	t.Helper()
	// Unix socket paths are length-limited (~104 bytes); keep them short.
	return filepath.Join(t.TempDir(), "s.sock")
}

func TestCallRoundTrip(t *testing.T) {
	h := &echoHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	resp, err := cli.Call(context.Background(), &protocol.Message{Type: protocol.TypeMemInfo, Size: 1234})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Free != 1234 {
		t.Fatalf("resp = %+v, want OK with Free=1234", resp)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	h := &echoHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := cli.Call(context.Background(), &protocol.Message{Type: protocol.TypeMemInfo, Size: int64(i)})
			if err != nil {
				errs <- err
				return
			}
			if resp.Free != int64(i) {
				errs <- fmt.Errorf("call %d got Free=%d", i, resp.Free)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSuspendedResponseDelivery(t *testing.T) {
	h := &parkHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	got := make(chan *protocol.Message, 1)
	go func() {
		resp, err := cli.Call(context.Background(), &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: 64})
		if err == nil {
			got <- resp
		} else {
			close(got)
		}
	}()

	// While one request is parked, a second request on the same
	// connection must still get through.
	deadline := time.Now().Add(2 * time.Second)
	for {
		h.mu.Lock()
		n := len(h.parked)
		h.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("alloc request never reached the handler")
		}
		time.Sleep(100 * time.Microsecond)
	}
	resp, err := cli.Call(context.Background(), &protocol.Message{Type: protocol.TypeMemInfo})
	if err != nil || !resp.OK {
		t.Fatalf("second call during suspension: resp=%+v err=%v", resp, err)
	}
	select {
	case <-got:
		t.Fatal("suspended call returned before Release")
	default:
	}

	if n := h.Release(); n != 1 {
		t.Fatalf("Release freed %d requests, want 1", n)
	}
	select {
	case resp, ok := <-got:
		if !ok {
			t.Fatal("suspended call failed")
		}
		if resp.Decision != protocol.DecisionAccept {
			t.Fatalf("suspended call resp = %+v", resp)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("suspended call never completed after Release")
	}
}

func TestCallContextCancel(t *testing.T) {
	h := &parkHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = cli.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: 64})
	if err != context.DeadlineExceeded {
		t.Fatalf("Call err = %v, want DeadlineExceeded", err)
	}
}

func TestClientCloseFailsInflight(t *testing.T) {
	h := &parkHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := cli.Call(context.Background(), &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: 64})
		errCh <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		h.mu.Lock()
		n := len(h.parked)
		h.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cli.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("in-flight call succeeded after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call did not fail after Close")
	}
	if _, err := cli.Call(context.Background(), &protocol.Message{Type: protocol.TypeMemInfo}); err == nil {
		t.Fatal("Call on closed client succeeded")
	}
}

func TestServerCloseNotifiesHandler(t *testing.T) {
	h := &echoHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(context.Background(), &protocol.Message{Type: protocol.TypeMemInfo}); err != nil {
		t.Fatal(err)
	}
	srv.Close() // waits for connection goroutines
	if n := atomic.LoadInt32(&h.closed); n != 1 {
		t.Fatalf("Closed called %d times, want 1", n)
	}
	cli.Close()
}

func TestServerConnTag(t *testing.T) {
	type tagCheck struct {
		mu  sync.Mutex
		got string
	}
	tc := &tagCheck{}
	h := handlerFunc{
		handle: func(conn *ServerConn, msg *protocol.Message, respond func(*protocol.Message)) {
			if msg.Type == protocol.TypeRegister {
				conn.SetTag(msg.Container)
			}
			tc.mu.Lock()
			tc.got = conn.Tag()
			tc.mu.Unlock()
			respond(&protocol.Message{OK: true})
		},
	}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Call(context.Background(), &protocol.Message{Type: protocol.TypeRegister, Container: "cont-7", Limit: 1}); err != nil {
		t.Fatal(err)
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.got != "cont-7" {
		t.Fatalf("connection tag = %q, want cont-7", tc.got)
	}
}

type handlerFunc struct {
	handle func(*ServerConn, *protocol.Message, func(*protocol.Message))
}

func (h handlerFunc) Handle(c *ServerConn, m *protocol.Message, r func(*protocol.Message)) {
	h.handle(c, m, r)
}
func (h handlerFunc) Closed(c *ServerConn) {}

func TestRespondOnceSuppressesDuplicates(t *testing.T) {
	h := handlerFunc{
		handle: func(c *ServerConn, m *protocol.Message, respond func(*protocol.Message)) {
			respond(&protocol.Message{OK: true, Free: 1})
			respond(&protocol.Message{OK: true, Free: 2}) // must be dropped
		},
	}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	resp, err := cli.Call(context.Background(), &protocol.Message{Type: protocol.TypeMemInfo})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Free != 1 {
		t.Fatalf("got Free=%d, want first response (1)", resp.Free)
	}
	// A second call still works; the duplicate did not corrupt framing.
	resp, err = cli.Call(context.Background(), &protocol.Message{Type: protocol.TypeMemInfo})
	if err != nil || resp.Free != 1 {
		t.Fatalf("followup call resp=%+v err=%v", resp, err)
	}
}

func TestMalformedFrameDoesNotKillConnection(t *testing.T) {
	h := &echoHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Inject garbage directly, then make a normal call.
	if _, err := cli.conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := cli.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo, Size: 7})
	if err != nil {
		t.Fatalf("call after garbage frame: %v", err)
	}
	if resp.Free != 7 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestDialMissingSocket(t *testing.T) {
	if _, err := Dial(filepath.Join(t.TempDir(), "absent.sock")); err == nil {
		t.Fatal("Dial on missing socket succeeded")
	}
}

// TestMalformedFrameEchoesSeq: a malformed message whose line still
// carries a recoverable sequence number gets an error response under
// that sequence number, so the caller correlates the failure instead of
// timing out.
func TestMalformedFrameEchoesSeq(t *testing.T) {
	h := &echoHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Make one good call to learn the client's next seq, then inject a
	// bad line claiming the following seq directly, and wait for its
	// error response through the normal Call plumbing by racing a real
	// Call that will take that seq.
	resp, err := cli.Call(context.Background(), &protocol.Message{Type: protocol.TypeMemInfo})
	if err != nil || !resp.OK {
		t.Fatalf("warmup: %+v %v", resp, err)
	}
	badSeq := resp.Seq + 1
	// Register interest in badSeq as a pending call would.
	ch := make(chan *protocol.Message, 1)
	cli.mu.Lock()
	if cli.overflow == nil {
		cli.overflow = make(map[uint64]chan *protocol.Message)
	}
	cli.overflow[badSeq] = ch
	cli.seq = badSeq
	cli.mu.Unlock()
	// An alloc with a negative size decodes structurally but fails
	// Validate — exactly the "malformed but seq still extractable" case.
	bad := fmt.Sprintf(`{"type":"alloc","seq":%d,"pid":1,"size":-1}`+"\n", badSeq)
	if _, err := cli.conn.Write([]byte(bad)); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-ch:
		if got.Seq != badSeq {
			t.Fatalf("error response seq = %d, want %d", got.Seq, badSeq)
		}
		if got.OK || got.Error == "" {
			t.Fatalf("error response = %+v, want !OK with error text", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no error response for malformed frame with extractable seq")
	}
}

// TestLateResponseAfterCancelDoesNotBlockReadLoop is the regression test
// for a response racing forget after a Call context cancellation: the
// read loop must drop (not block on) responses for forgotten sequence
// numbers, and the connection must stay fully usable.
func TestLateResponseAfterCancelDoesNotBlockReadLoop(t *testing.T) {
	h := &parkHandler{}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := cli.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: 64})
			done <- err
		}()
		// Wait until the request is parked server-side, then release it
		// and cancel the call at the same instant — the response and the
		// forget race.
		deadline := time.Now().Add(2 * time.Second)
		for {
			h.mu.Lock()
			n := len(h.parked)
			h.mu.Unlock()
			if n >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("request never parked")
			}
			time.Sleep(50 * time.Microsecond)
		}
		go h.Release()
		cancel()
		if err := <-done; err != nil && err != context.Canceled {
			t.Fatalf("iteration %d: Call err = %v", i, err)
		}
		// The read loop must still be serving: a fresh call succeeds.
		ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
		resp, err := cli.Call(ctx2, &protocol.Message{Type: protocol.TypeMemInfo})
		cancel2()
		if err != nil || !resp.OK {
			t.Fatalf("iteration %d: follow-up call resp=%+v err=%v", i, resp, err)
		}
	}
}

// TestRespondedMessageNotAliased asserts the pool ownership rule end to
// end: after respond returns (and the message goes back to the pool), a
// concurrent burst of traffic reusing pooled messages must never leak
// into an earlier response observed by the client.
func TestRespondedMessageNotAliased(t *testing.T) {
	h := handlerFunc{
		handle: func(c *ServerConn, m *protocol.Message, respond func(*protocol.Message)) {
			resp := protocol.AcquireMessage()
			resp.OK = true
			resp.Free = m.Size
			respond(resp)
		},
	}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const goroutines = 8
	const iters = 400
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				want := int64(g*iters + i + 1)
				resp, err := cli.Call(context.Background(), &protocol.Message{Type: protocol.TypeMemInfo, Size: want})
				if err != nil {
					errs <- err
					return
				}
				if resp.Free != want {
					errs <- fmt.Errorf("goroutine %d iter %d: Free=%d want %d (pooled message aliased?)", g, i, resp.Free, want)
					return
				}
				protocol.ReleaseMessage(resp)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBatchedSendsCoalesce verifies BeginBatch/EndBatch delivery: every
// message sent inside a batch arrives after EndBatch.
func TestBatchedSendsCoalesce(t *testing.T) {
	conns := make(chan *ServerConn, 1)
	h := handlerFunc{
		handle: func(c *ServerConn, m *protocol.Message, respond func(*protocol.Message)) {
			select {
			case conns <- c:
			default:
			}
			respond(&protocol.Message{OK: true})
		},
	}
	srv, err := Listen(sockPath(t), h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Call(context.Background(), &protocol.Message{Type: protocol.TypeMemInfo}); err != nil {
		t.Fatal(err)
	}
	sc := <-conns

	// Park interest in 100 unsolicited "responses" the server pushes in
	// one batch (sequence numbers far above the client's counter).
	const n = 100
	chans := make(map[uint64]chan *protocol.Message, n)
	cli.mu.Lock()
	if cli.overflow == nil {
		cli.overflow = make(map[uint64]chan *protocol.Message)
	}
	for i := uint64(1000); i < 1000+n; i++ {
		ch := make(chan *protocol.Message, 1)
		cli.overflow[i] = ch
		chans[i] = ch
	}
	cli.mu.Unlock()

	sc.BeginBatch()
	for i := uint64(1000); i < 1000+n; i++ {
		if err := sc.Send(&protocol.Message{Type: protocol.TypeResponse, Seq: i, OK: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sc.EndBatch(); err != nil {
		t.Fatal(err)
	}
	for seq, ch := range chans {
		select {
		case <-ch:
		case <-time.After(2 * time.Second):
			t.Fatalf("batched message seq=%d never delivered", seq)
		}
	}
}
