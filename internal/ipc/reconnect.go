package ipc

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"convgpu/internal/clock"
	"convgpu/internal/protocol"
)

// Backoff shapes the reconnect retry schedule: delays start at Base and
// multiply by Factor up to Max, each randomized by ±Jitter/2 so a fleet
// of wrappers that lost the daemon together does not redial in
// lockstep. Zero fields take the Default* values below.
type Backoff struct {
	Base   time.Duration
	Max    time.Duration
	Factor float64
	Jitter float64 // fraction of the delay to randomize over, in [0,1]
}

// Default backoff parameters (see DESIGN.md §"Failure domains").
const (
	DefaultBackoffBase   = 20 * time.Millisecond
	DefaultBackoffMax    = 2 * time.Second
	DefaultBackoffFactor = 2.0
	DefaultBackoffJitter = 0.5
)

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = DefaultBackoffBase
	}
	if b.Max <= 0 {
		b.Max = DefaultBackoffMax
	}
	if b.Factor < 1 {
		b.Factor = DefaultBackoffFactor
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = DefaultBackoffJitter
	}
	return b
}

// ReconnectConfig configures a Reconnector.
type ReconnectConfig struct {
	// Network and Addr are passed to net.Dial ("unix", socket path).
	Network string
	Addr    string
	// Dial overrides net.Dial when set — the seam for tests and the
	// fault-injection harness to hand out wrapped connections.
	Dial func() (net.Conn, error)
	// Backoff shapes the redial schedule; zero fields take defaults.
	Backoff Backoff
	// MaxAttempts bounds one connect's dial attempts; 0 retries until
	// the context expires or the Reconnector is closed.
	MaxAttempts int
	// CallTimeout bounds each Call. Allocation requests are exempt: a
	// suspended allocation legitimately blocks until memory is granted
	// (the paper's core mechanism), so its liveness comes from
	// connection failure and the daemon's session lease, not a
	// deadline. Zero disables the per-call bound.
	CallTimeout time.Duration
	// OnReconnect runs on each freshly dialed client before it is
	// published — the wrapper re-attaches its session and replays live
	// allocations here. An error discards the connection and counts as
	// a failed attempt. The hook must use the *Client it is given and
	// never call back into the Reconnector (deadlock).
	OnReconnect func(*Client) error
	// Clock paces the backoff sleeps; nil uses the real clock.
	Clock clock.Clock
	// Seed makes the jitter deterministic for tests; 0 self-seeds.
	Seed int64
	// RTT, when set, observes each successful Call's round-trip time.
	// The interface is satisfied by obs.Histogram without this package
	// importing the observability layer.
	RTT LatencyObserver
	// Reconnects, when set, is incremented each time a dial publishes a
	// fresh connection after the first (i.e. true reconnects).
	Reconnects CountObserver
	// DisableBinary keeps every connection on the JSON codec instead of
	// negotiating the binary fast path at attach time — the debug knob
	// for reading the wire with standard tools. The CONVGPU_WIRE_JSON
	// environment variable forces the same process-wide.
	DisableBinary bool
	// Wire, when set, counts frames by codec across every connection
	// this Reconnector publishes (totals survive redials).
	Wire *WireStats
}

// defaultNegotiateTimeout bounds the codec handshake when no
// CallTimeout is configured: negotiation must never hang a connect, it
// just falls back to JSON.
const defaultNegotiateTimeout = 2 * time.Second

// forceJSONEnv reports whether the CONVGPU_WIRE_JSON environment
// variable disables binary negotiation process-wide.
func forceJSONEnv() bool { return os.Getenv("CONVGPU_WIRE_JSON") != "" }

// LatencyObserver receives call round-trip durations (obs.Histogram).
type LatencyObserver interface{ Observe(time.Duration) }

// CountObserver receives occurrence ticks (obs.Counter).
type CountObserver interface{ Inc() }

// Reconnector is a Client that survives connection loss: every Call
// dials on demand, applies the configured per-call deadline, and — on a
// transport failure — discards the dead connection so the next Call
// redials under exponential backoff.
//
// A failed Call is NOT retried automatically: an allocation request is
// not idempotent (the response may have been sent, and acted on, just
// before the connection died), so the transport refuses to guess and
// surfaces the error for the wrapper to map fail-closed.
type Reconnector struct {
	cfg ReconnectConfig
	clk clock.Clock

	dialMu sync.Mutex // single-flight: at most one backoff loop at a time

	mu     sync.Mutex
	cur    *Client
	closed bool
	gen    uint64 // bumped on each published connection

	rngMu sync.Mutex
	rng   *rand.Rand

	done chan struct{}
}

// NewReconnector returns a Reconnector; no connection is made until the
// first Call or Connect.
func NewReconnector(cfg ReconnectConfig) *Reconnector {
	cfg.Backoff = cfg.Backoff.withDefaults()
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	return &Reconnector{
		cfg:  cfg,
		clk:  clk,
		rng:  rand.New(rand.NewSource(seed)),
		done: make(chan struct{}),
	}
}

// Generation counts published connections: it increments each time a
// dial succeeds, so a test can assert "reconnected exactly once".
func (r *Reconnector) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// Connect returns the live client, dialing (with backoff) if there is
// none. Concurrent callers share one dial loop.
func (r *Reconnector) Connect(ctx context.Context) (*Client, error) {
	r.dialMu.Lock()
	defer r.dialMu.Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if c := r.cur; c != nil {
		r.mu.Unlock()
		return c, nil
	}
	r.mu.Unlock()

	delay := r.cfg.Backoff.Base
	var lastErr error
	for attempt := 1; ; attempt++ {
		conn, err := r.dial()
		if err == nil {
			c := NewClient(conn)
			c.SetWireStats(r.cfg.Wire)
			if !r.cfg.DisableBinary && !forceJSONEnv() {
				// Offer the binary codec on the fresh connection, bounded
				// so a lost or mangled handshake costs one timeout and a
				// JSON connection, never a hang. Errors are deliberately
				// ignored: a connection the handshake killed fails the
				// OnReconnect replay (or the first Call) and redials.
				nt := r.cfg.CallTimeout
				if nt <= 0 {
					nt = defaultNegotiateTimeout
				}
				nctx, cancel := context.WithTimeout(ctx, nt)
				_, _ = c.NegotiateBinary(nctx)
				cancel()
			}
			if r.cfg.OnReconnect != nil {
				if herr := r.cfg.OnReconnect(c); herr != nil {
					c.Close()
					err = fmt.Errorf("reconnect hook: %w", herr)
				}
			}
			if err == nil {
				r.mu.Lock()
				if r.closed {
					r.mu.Unlock()
					c.Close()
					return nil, ErrClosed
				}
				r.cur = c
				r.gen++
				reconnected := r.gen > 1
				r.mu.Unlock()
				if reconnected && r.cfg.Reconnects != nil {
					r.cfg.Reconnects.Inc()
				}
				return c, nil
			}
		}
		lastErr = err
		if r.cfg.MaxAttempts > 0 && attempt >= r.cfg.MaxAttempts {
			return nil, fmt.Errorf("ipc: reconnect gave up after %d attempts: %w", attempt, lastErr)
		}
		select {
		case <-r.clk.After(r.jittered(delay)):
		case <-ctx.Done():
			return nil, fmt.Errorf("ipc: reconnect: %w", ctx.Err())
		case <-r.done:
			return nil, ErrClosed
		}
		delay = time.Duration(float64(delay) * r.cfg.Backoff.Factor)
		if delay > r.cfg.Backoff.Max {
			delay = r.cfg.Backoff.Max
		}
	}
}

// Call implements wrapper.Caller over the self-healing connection. See
// the type comment for the no-retry rationale; CallTimeout bounds every
// message type except allocation requests.
func (r *Reconnector) Call(ctx context.Context, m *protocol.Message) (*protocol.Message, error) {
	c, err := r.Connect(ctx)
	if err != nil {
		return nil, err
	}
	callCtx := ctx
	if r.cfg.CallTimeout > 0 && m.Type != protocol.TypeAlloc {
		var cancel context.CancelFunc
		callCtx, cancel = context.WithTimeout(ctx, r.cfg.CallTimeout)
		defer cancel()
	}
	var start time.Time
	if r.cfg.RTT != nil {
		start = time.Now()
	}
	resp, err := c.Call(callCtx, m)
	if err == nil && r.cfg.RTT != nil {
		r.cfg.RTT.Observe(time.Since(start))
	}
	if err != nil {
		// Drop the connection on transport failure or per-call timeout
		// (an unresponsive peer), but keep it when only the caller's own
		// context ended — the transport itself proved nothing wrong.
		if ctx.Err() == nil {
			r.drop(c)
		}
		return nil, err
	}
	return resp, nil
}

// InFlight reports the pipeline depth of the current connection — the
// number of Calls outstanding — or 0 while disconnected. The facade
// exposes it as a gauge.
func (r *Reconnector) InFlight() int64 {
	r.mu.Lock()
	c := r.cur
	r.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.InFlight()
}

// drop discards a connection observed failing, if it is still the
// published one, so the next Call redials.
func (r *Reconnector) drop(c *Client) {
	r.mu.Lock()
	if r.cur == c {
		r.cur = nil
	}
	r.mu.Unlock()
	c.Close()
}

// Close tears down the current connection and wakes any backoff sleep;
// subsequent Calls fail with ErrClosed.
func (r *Reconnector) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	c := r.cur
	r.cur = nil
	close(r.done)
	r.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

func (r *Reconnector) dial() (net.Conn, error) {
	if r.cfg.Dial != nil {
		return r.cfg.Dial()
	}
	return net.Dial(r.cfg.Network, r.cfg.Addr)
}

// jittered spreads d over [d·(1−J/2), d·(1+J/2)].
func (r *Reconnector) jittered(d time.Duration) time.Duration {
	j := r.cfg.Backoff.Jitter
	if j <= 0 {
		return d
	}
	r.rngMu.Lock()
	f := 1 - j/2 + j*r.rng.Float64()
	r.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}
