package ipc

import "sync/atomic"

// WireStats counts transport frames by codec and direction, plus codec
// negotiations and frames that failed to decode. It is a plain bundle
// of atomics so the hot path pays one predicated add per frame; the
// observability layer renders it through gauges without this package
// importing it (see obs.BindWire). One WireStats may be shared across
// servers, clients and redials — the counters are totals for whatever
// it is attached to.
type WireStats struct {
	binaryIn     atomic.Uint64
	binaryOut    atomic.Uint64
	jsonIn       atomic.Uint64
	jsonOut      atomic.Uint64
	negotiations atomic.Uint64
	frameErrors  atomic.Uint64
}

// Frames reports the number of frames seen for one codec/direction.
func (w *WireStats) Frames(binary, out bool) uint64 {
	switch {
	case binary && out:
		return w.binaryOut.Load()
	case binary:
		return w.binaryIn.Load()
	case out:
		return w.jsonOut.Load()
	default:
		return w.jsonIn.Load()
	}
}

// Negotiations reports completed binary-codec handshakes (counted on
// the side that answered or initiated them).
func (w *WireStats) Negotiations() uint64 { return w.negotiations.Load() }

// FrameErrors reports frames that arrived but failed to decode.
func (w *WireStats) FrameErrors() uint64 { return w.frameErrors.Load() }

// countFrame bumps one codec/direction counter; nil-safe so call sites
// can use the loaded pointer unconditionally.
func (w *WireStats) countFrame(binary, out bool) {
	if w == nil {
		return
	}
	switch {
	case binary && out:
		w.binaryOut.Add(1)
	case binary:
		w.binaryIn.Add(1)
	case out:
		w.jsonOut.Add(1)
	default:
		w.jsonIn.Add(1)
	}
}

func (w *WireStats) countNegotiation() {
	if w != nil {
		w.negotiations.Add(1)
	}
}

func (w *WireStats) countFrameError() {
	if w != nil {
		w.frameErrors.Add(1)
	}
}
