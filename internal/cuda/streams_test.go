package cuda

import (
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
	"convgpu/internal/gpu"
)

// virtualRT builds a runtime on a virtual clock so stream timing is
// deterministic.
func virtualRT(t *testing.T) (*Runtime, *clock.Manual) {
	t.Helper()
	clk := clock.NewManual()
	dev := gpu.New(gpu.K20m(), gpu.WithLatency(gpu.Latency{}, clk))
	return NewRuntime(dev, 5), clk
}

func TestStreamCreateDestroy(t *testing.T) {
	rt, _ := virtualRT(t)
	s1, err := rt.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := rt.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 || s1 == 0 || s2 == 0 {
		t.Fatalf("stream ids: %d, %d", s1, s2)
	}
	if err := rt.StreamDestroy(s1); err != nil {
		t.Fatal(err)
	}
	if err := rt.StreamDestroy(s1); err != ErrorInvalidValue {
		t.Fatalf("double destroy: %v", err)
	}
	if err := rt.StreamDestroy(0); err != ErrorInvalidValue {
		t.Fatalf("destroying the default stream: %v", err)
	}
	// Operations on a destroyed stream fail.
	if err := rt.StreamSynchronize(s1); err != ErrorInvalidValue {
		t.Fatalf("sync on destroyed stream: %v", err)
	}
}

func TestStreamsOverlapKernels(t *testing.T) {
	rt, clk := virtualRT(t)
	s1, _ := rt.StreamCreate()
	s2, _ := rt.StreamCreate()
	// Two 10 s kernels on different streams overlap (Hyper-Q); the
	// device drains at +10 s, not +20 s.
	if err := rt.LaunchKernel(Kernel{Name: "a", Duration: 10 * time.Second}, s1); err != nil {
		t.Fatal(err)
	}
	if err := rt.LaunchKernel(Kernel{Name: "b", Duration: 10 * time.Second}, s2); err != nil {
		t.Fatal(err)
	}
	end, _ := rt.EventCreate()
	if err := rt.EventRecord(end, s1); err != nil {
		t.Fatal(err)
	}
	if want := clock.Epoch.Add(10 * time.Second); !end.at.Equal(want) {
		t.Fatalf("stream 1 drains at %v, want %v (overlapped)", end.at, want)
	}
	end2, _ := rt.EventCreate()
	rt.EventRecord(end2, s2)
	if want := clock.Epoch.Add(10 * time.Second); !end2.at.Equal(want) {
		t.Fatalf("stream 2 drains at %v, want %v", end2.at, want)
	}
	_ = clk
}

func TestEventElapsedMeasuresKernelTime(t *testing.T) {
	rt, _ := virtualRT(t)
	s, _ := rt.StreamCreate()
	start, _ := rt.EventCreate()
	end, _ := rt.EventCreate()
	if err := rt.EventRecord(start, s); err != nil {
		t.Fatal(err)
	}
	if err := rt.LaunchKernel(Kernel{Name: "k", Duration: 3 * time.Second}, s); err != nil {
		t.Fatal(err)
	}
	if err := rt.EventRecord(end, s); err != nil {
		t.Fatal(err)
	}
	d, err := rt.EventElapsed(start, end)
	if err != nil {
		t.Fatal(err)
	}
	if d != 3*time.Second {
		t.Fatalf("elapsed = %v, want 3s", d)
	}
}

func TestEventValidation(t *testing.T) {
	rt, _ := virtualRT(t)
	ev, _ := rt.EventCreate()
	if err := rt.EventSynchronize(ev); err != ErrorInvalidValue {
		t.Fatalf("sync of unrecorded event: %v", err)
	}
	if _, err := rt.EventElapsed(ev, ev); err != ErrorInvalidValue {
		t.Fatalf("elapsed of unrecorded events: %v", err)
	}
	if err := rt.EventRecord(nil, 0); err != ErrorInvalidValue {
		t.Fatalf("record nil event: %v", err)
	}
	if err := rt.EventRecord(ev, 99); err != ErrorInvalidValue {
		t.Fatalf("record on bogus stream: %v", err)
	}
	if err := rt.EventSynchronize(nil); err != ErrorInvalidValue {
		t.Fatalf("sync nil event: %v", err)
	}
	if _, err := rt.EventElapsed(nil, ev); err != ErrorInvalidValue {
		t.Fatalf("elapsed with nil: %v", err)
	}
}

func TestEventSynchronizeWaits(t *testing.T) {
	rt, clk := virtualRT(t)
	if err := rt.LaunchKernel(Kernel{Name: "k", Duration: 5 * time.Second}, 0); err != nil {
		t.Fatal(err)
	}
	ev, _ := rt.EventCreate()
	if err := rt.EventRecord(ev, 0); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		rt.EventSynchronize(ev)
		close(done)
	}()
	for clk.Pending() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	select {
	case <-done:
		t.Fatal("EventSynchronize returned before the kernel drained")
	default:
	}
	clk.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("EventSynchronize never returned")
	}
}

func TestMemcpyAsyncQueuesOnStream(t *testing.T) {
	rt, _ := virtualRT(t)
	ptr, err := rt.Malloc(bytesize.GiB)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := rt.StreamCreate()
	if err := rt.MemcpyAsync(ptr, bytesize.GiB, MemcpyHostToDevice, s); err != nil {
		t.Fatal(err)
	}
	// 1 GiB at 6 GiB/s: the stream is busy for ~1/6 s.
	ev, _ := rt.EventCreate()
	rt.EventRecord(ev, s)
	busy := ev.at.Sub(clock.Epoch)
	want := time.Second / 6
	if busy < want-time.Millisecond || busy > want+time.Millisecond {
		t.Fatalf("async copy queued %v of work, want ~%v", busy, want)
	}
	// Validation failures are synchronous.
	if err := rt.MemcpyAsync(ptr+1, 1, MemcpyHostToDevice, s); err != ErrorInvalidDevicePointer {
		t.Fatalf("bogus async ptr: %v", err)
	}
	if err := rt.MemcpyAsync(ptr, 1, MemcpyKind(9), s); err != ErrorInvalidValue {
		t.Fatalf("bogus kind: %v", err)
	}
	if err := rt.MemcpyAsync(ptr, 1, MemcpyHostToDevice, 12345); err != ErrorInvalidValue {
		t.Fatalf("bogus stream: %v", err)
	}
}

func TestStreamSynchronizeOnlyThatStream(t *testing.T) {
	rt, clk := virtualRT(t)
	s1, _ := rt.StreamCreate()
	s2, _ := rt.StreamCreate()
	rt.LaunchKernel(Kernel{Duration: 2 * time.Second}, s1)
	rt.LaunchKernel(Kernel{Duration: 10 * time.Second}, s2)
	done := make(chan struct{})
	go func() {
		rt.StreamSynchronize(s1)
		close(done)
	}()
	for clk.Pending() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	clk.Advance(2 * time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("StreamSynchronize(s1) blocked on s2's work")
	}
	if rt.Device().BusyStreams() != 1 {
		t.Fatalf("busy streams = %d, want s2 still running", rt.Device().BusyStreams())
	}
}
