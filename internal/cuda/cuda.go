// Package cuda simulates the CUDA Runtime API surface that ConVGPU's
// wrapper module covers (paper Table II) plus the calls the evaluation
// workloads need (memcpy, kernel launch, synchronization).
//
// In the real system each container process dynamically links
// libcudart.so and the wrapper library overrides a subset of its symbols
// via LD_PRELOAD. Here the same seam is expressed as an interface: user
// programs call through API, the plain Runtime implements it against the
// simulated device, and the wrapper module (package wrapper) implements
// the same interface by interposing on a Runtime — the Go analogue of
// symbol interposition, preserving the property the paper highlights:
// only the hooked entry points are replaced, everything else passes
// through untouched.
package cuda

import (
	"fmt"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/gpu"
)

// DevPtr is a device pointer as returned by the allocation APIs.
type DevPtr uint64

// Error is a cudaError_t. The zero value is cudaSuccess; non-zero values
// implement the error interface so Go callers use the usual err != nil.
type Error int

// CUDA error codes used by the simulation (CUDA 8 numbering).
const (
	Success                   Error = 0
	ErrorMemoryAllocation     Error = 2
	ErrorInitializationError  Error = 3
	ErrorInvalidValue         Error = 11
	ErrorInvalidDevicePointer Error = 17
	ErrorUnknown              Error = 30
)

func (e Error) Error() string {
	switch e {
	case Success:
		return "cudaSuccess"
	case ErrorMemoryAllocation:
		return "cudaErrorMemoryAllocation"
	case ErrorInitializationError:
		return "cudaErrorInitializationError"
	case ErrorInvalidValue:
		return "cudaErrorInvalidValue"
	case ErrorInvalidDevicePointer:
		return "cudaErrorInvalidDevicePointer"
	default:
		return fmt.Sprintf("cudaError(%d)", int(e))
	}
}

// FromDevice maps simulated-device failures to CUDA error codes.
func FromDevice(err error) error {
	switch err {
	case nil:
		return nil
	case gpu.ErrOutOfMemory:
		return ErrorMemoryAllocation
	case gpu.ErrInvalidValue:
		return ErrorInvalidValue
	case gpu.ErrInvalidDevicePointer:
		return ErrorInvalidDevicePointer
	case gpu.ErrNoContext:
		return ErrorInitializationError
	default:
		return ErrorUnknown
	}
}

// MemcpyKind mirrors cudaMemcpyKind.
type MemcpyKind int

// Transfer directions.
const (
	MemcpyHostToDevice   MemcpyKind = 1
	MemcpyDeviceToHost   MemcpyKind = 2
	MemcpyDeviceToDevice MemcpyKind = 3
)

// Kernel describes a launch: a name for diagnostics and the simulated
// execution duration standing in for the kernel's real work.
type Kernel struct {
	Name     string
	Duration time.Duration
}

// Extent is a cudaExtent: the dimensions of a 3D allocation in bytes
// (width) and elements (height, depth).
type Extent struct {
	Width  bytesize.Size
	Height int64
	Depth  int64
}

// PitchedPtr is a cudaPitchedPtr: the result of cudaMalloc3D.
type PitchedPtr struct {
	Ptr   DevPtr
	Pitch bytesize.Size
}

// API is the CUDA Runtime surface visible to user programs. The methods
// marked (Table II) are the ones the ConVGPU wrapper module intercepts.
type API interface {
	// Malloc is cudaMalloc (Table II).
	Malloc(size bytesize.Size) (DevPtr, error)
	// MallocManaged is cudaMallocManaged (Table II).
	MallocManaged(size bytesize.Size) (DevPtr, error)
	// MallocPitch is cudaMallocPitch (Table II).
	MallocPitch(width, height bytesize.Size) (DevPtr, bytesize.Size, error)
	// Malloc3D is cudaMalloc3D (Table II).
	Malloc3D(extent Extent) (PitchedPtr, error)
	// Free is cudaFree (Table II).
	Free(ptr DevPtr) error
	// MemGetInfo is cudaMemGetInfo (Table II).
	MemGetInfo() (free, total bytesize.Size, err error)
	// GetDeviceProperties is cudaGetDeviceProperties (Table II).
	GetDeviceProperties() (gpu.Properties, error)
	// Memcpy is cudaMemcpy; devPtr addresses the device side of the copy.
	Memcpy(devPtr DevPtr, size bytesize.Size, kind MemcpyKind) error
	// LaunchKernel stands in for the <<<>>> launch of a compiled kernel.
	LaunchKernel(k Kernel, stream int) error
	// DeviceSynchronize is cudaDeviceSynchronize.
	DeviceSynchronize() error
	// UnregisterFatBinary is __cudaUnregisterFatBinary (Table II): the
	// implicit call the runtime makes when the process exits.
	UnregisterFatBinary() error
}

// Runtime is the un-intercepted CUDA runtime bound to one process: the
// "original CUDA API" the wrapper module forwards to.
type Runtime struct {
	dev     *gpu.Device
	pid     int
	streams streamState
}

// NewRuntime binds a process to the device, as linking libcudart does.
func NewRuntime(dev *gpu.Device, pid int) *Runtime {
	return &Runtime{dev: dev, pid: pid}
}

// now reads the device clock (virtual in simulations).
func (r *Runtime) now() time.Time { return r.dev.Clock().Now() }

// PID returns the owning process id.
func (r *Runtime) PID() int { return r.pid }

// Device exposes the underlying simulated device (used by tests).
func (r *Runtime) Device() *gpu.Device { return r.dev }

// Malloc implements API.
func (r *Runtime) Malloc(size bytesize.Size) (DevPtr, error) {
	addr, err := r.dev.Alloc(r.pid, size)
	return DevPtr(addr), FromDevice(err)
}

// MallocManaged implements API.
func (r *Runtime) MallocManaged(size bytesize.Size) (DevPtr, error) {
	addr, err := r.dev.AllocManaged(r.pid, size)
	return DevPtr(addr), FromDevice(err)
}

// MallocPitch implements API.
func (r *Runtime) MallocPitch(width, height bytesize.Size) (DevPtr, bytesize.Size, error) {
	addr, pitch, err := r.dev.AllocPitch(r.pid, width, height)
	return DevPtr(addr), pitch, FromDevice(err)
}

// Malloc3D implements API. A 3D allocation is a pitched allocation of
// height*depth rows.
func (r *Runtime) Malloc3D(extent Extent) (PitchedPtr, error) {
	if extent.Width <= 0 || extent.Height <= 0 || extent.Depth <= 0 {
		return PitchedPtr{}, ErrorInvalidValue
	}
	rows := bytesize.Size(extent.Height * extent.Depth)
	addr, pitch, err := r.dev.AllocPitch(r.pid, extent.Width, rows)
	if err != nil {
		return PitchedPtr{}, FromDevice(err)
	}
	return PitchedPtr{Ptr: DevPtr(addr), Pitch: pitch}, nil
}

// Free implements API.
func (r *Runtime) Free(ptr DevPtr) error {
	_, err := r.dev.Free(r.pid, uint64(ptr))
	return FromDevice(err)
}

// MemGetInfo implements API: the raw device view.
func (r *Runtime) MemGetInfo() (free, total bytesize.Size, err error) {
	free, total = r.dev.MemInfo()
	return free, total, nil
}

// GetDeviceProperties implements API.
func (r *Runtime) GetDeviceProperties() (gpu.Properties, error) {
	return r.dev.Properties(), nil
}

// Memcpy implements API.
func (r *Runtime) Memcpy(devPtr DevPtr, size bytesize.Size, kind MemcpyKind) error {
	switch kind {
	case MemcpyHostToDevice, MemcpyDeviceToHost, MemcpyDeviceToDevice:
	default:
		return ErrorInvalidValue
	}
	return FromDevice(r.dev.Memcpy(r.pid, uint64(devPtr), size))
}

// LaunchKernel implements API.
func (r *Runtime) LaunchKernel(k Kernel, stream int) error {
	return FromDevice(r.dev.Launch(r.pid, stream, k.Duration))
}

// DeviceSynchronize implements API.
func (r *Runtime) DeviceSynchronize() error {
	r.dev.Synchronize(r.pid)
	return nil
}

// UnregisterFatBinary implements API: it tears down the process context,
// releasing everything the process still holds (leaks included).
func (r *Runtime) UnregisterFatBinary() error {
	_, err := r.dev.DestroyContext(r.pid)
	if err == gpu.ErrNoContext {
		// The process never touched the device; unregistering is a no-op,
		// matching a CUDA program that exits before any API call.
		return nil
	}
	return FromDevice(err)
}

var _ API = (*Runtime)(nil)
