package cuda

import (
	"testing"

	"convgpu/internal/bytesize"
	"convgpu/internal/gpu"
)

func newDriver(t *testing.T) *Driver {
	t.Helper()
	return NewDriver(gpu.New(gpu.K20m()), 77)
}

func TestCUresultStrings(t *testing.T) {
	cases := map[CUresult]string{
		CUDASuccess:             "CUDA_SUCCESS",
		CUDAErrorInvalidValue:   "CUDA_ERROR_INVALID_VALUE",
		CUDAErrorOutOfMemory:    "CUDA_ERROR_OUT_OF_MEMORY",
		CUDAErrorNotInitialized: "CUDA_ERROR_NOT_INITIALIZED",
		CUDAErrorDeinitialized:  "CUDA_ERROR_DEINITIALIZED",
		CUDAErrorInvalidContext: "CUDA_ERROR_INVALID_CONTEXT",
		CUresult(999):           "CUresult(999)",
	}
	for r, want := range cases {
		if got := r.Error(); got != want {
			t.Errorf("CUresult(%d) = %q, want %q", int(r), got, want)
		}
	}
}

func TestDriverRequiresInit(t *testing.T) {
	d := newDriver(t)
	if _, err := d.DeviceGet(0); err != CUDAErrorNotInitialized {
		t.Fatalf("DeviceGet before cuInit: %v", err)
	}
	if err := d.CtxCreate(0); err != CUDAErrorNotInitialized {
		t.Fatalf("CtxCreate before cuInit: %v", err)
	}
	if err := d.Init(1); err != CUDAErrorInvalidValue {
		t.Fatalf("cuInit(1): %v, want invalid value", err)
	}
	if err := d.Init(0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DeviceGet(0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DeviceGet(3); err != CUDAErrorInvalidValue {
		t.Fatalf("DeviceGet(3): %v", err)
	}
}

func TestDriverRequiresContext(t *testing.T) {
	d := newDriver(t)
	if err := d.Init(0); err != nil {
		t.Fatal(err)
	}
	// Unlike the Runtime API, no implicit context: allocation fails.
	if _, err := d.MemAlloc(4096); err != CUDAErrorInvalidContext {
		t.Fatalf("MemAlloc without ctx: %v", err)
	}
	if err := d.CtxSynchronize(); err != CUDAErrorInvalidContext {
		t.Fatalf("CtxSynchronize without ctx: %v", err)
	}
	if err := d.CtxCreate(0); err != nil {
		t.Fatal(err)
	}
	ptr, err := d.MemAlloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.MemFree(ptr); err != nil {
		t.Fatal(err)
	}
}

func TestDriverLifecycleAndLeaks(t *testing.T) {
	d := newDriver(t)
	d.Init(0)
	if err := d.CtxCreate(0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.MemAlloc(bytesize.GiB); err != nil {
		t.Fatal(err) // leaked deliberately
	}
	if err := d.CtxDestroy(); err != nil {
		t.Fatal(err)
	}
	if used := d.Device().Used(); used != 0 {
		t.Fatalf("device used = %v after cuCtxDestroy", used)
	}
	// Context gone: operations fail again.
	if _, err := d.MemAlloc(1); err != CUDAErrorInvalidContext {
		t.Fatalf("MemAlloc after destroy: %v", err)
	}
	if err := d.CtxDestroy(); err != CUDAErrorInvalidContext {
		t.Fatalf("double CtxDestroy: %v", err)
	}
}

func TestDriverMemOps(t *testing.T) {
	d := newDriver(t)
	d.Init(0)
	d.CtxCreate(0)
	total, err := d.DeviceTotalMem(0)
	if err != nil || total != 5*bytesize.GiB {
		t.Fatalf("DeviceTotalMem = (%v,%v)", total, err)
	}
	if _, err := d.DeviceTotalMem(1); err != CUDAErrorInvalidValue {
		t.Fatalf("DeviceTotalMem(1): %v", err)
	}
	free, tot, err := d.MemGetInfo()
	if err != nil || tot != 5*bytesize.GiB || free >= tot {
		t.Fatalf("MemGetInfo = (%v,%v,%v)", free, tot, err) // ctx overhead consumed
	}
	ptr, err := d.MemAlloc(bytesize.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.MemcpyHtoD(ptr, bytesize.MiB); err != nil {
		t.Fatal(err)
	}
	if err := d.MemcpyDtoH(ptr, bytesize.MiB); err != nil {
		t.Fatal(err)
	}
	if err := d.MemcpyHtoD(ptr+1, 1); err != CUDAErrorInvalidValue {
		t.Fatalf("bogus HtoD: %v", err)
	}
	if err := d.LaunchKernel(Kernel{Name: "k"}, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.CtxSynchronize(); err != nil {
		t.Fatal(err)
	}
	if err := d.MemFree(ptr); err != nil {
		t.Fatal(err)
	}
	if err := d.MemFree(ptr); err != CUDAErrorInvalidValue {
		t.Fatalf("double MemFree: %v", err)
	}
}

func TestDriverOOM(t *testing.T) {
	d := newDriver(t)
	d.Init(0)
	d.CtxCreate(0)
	if _, err := d.MemAlloc(6 * bytesize.GiB); err != CUDAErrorOutOfMemory {
		t.Fatalf("oversized MemAlloc: %v", err)
	}
}
