package cuda

import (
	"fmt"
	"sync"

	"convgpu/internal/bytesize"
	"convgpu/internal/gpu"
)

// The paper (§III-C) stresses that the wrapper module "can cover both
// CUDA Driver API and Runtime API": programs using the low-level driver
// interface (cuMemAlloc, explicit contexts) are managed exactly like
// Runtime-API programs. This file provides that driver surface over the
// same simulated device, with the Driver API's distinctive semantics:
// explicit initialization (cuInit), explicit context lifecycle
// (cuCtxCreate/cuCtxDestroy), and CUresult error codes.

// CUresult is the Driver API's error type. Zero is CUDA_SUCCESS;
// non-zero values implement error.
type CUresult int

// Driver API result codes (CUDA 8 numbering).
const (
	CUDASuccess             CUresult = 0
	CUDAErrorInvalidValue   CUresult = 1
	CUDAErrorOutOfMemory    CUresult = 2
	CUDAErrorNotInitialized CUresult = 3
	CUDAErrorDeinitialized  CUresult = 4
	CUDAErrorInvalidContext CUresult = 201
)

func (r CUresult) Error() string {
	switch r {
	case CUDASuccess:
		return "CUDA_SUCCESS"
	case CUDAErrorInvalidValue:
		return "CUDA_ERROR_INVALID_VALUE"
	case CUDAErrorOutOfMemory:
		return "CUDA_ERROR_OUT_OF_MEMORY"
	case CUDAErrorNotInitialized:
		return "CUDA_ERROR_NOT_INITIALIZED"
	case CUDAErrorDeinitialized:
		return "CUDA_ERROR_DEINITIALIZED"
	case CUDAErrorInvalidContext:
		return "CUDA_ERROR_INVALID_CONTEXT"
	default:
		return fmt.Sprintf("CUresult(%d)", int(r))
	}
}

// driverResult maps simulated-device failures to CUresult codes.
func driverResult(err error) error {
	switch err {
	case nil:
		return nil
	case gpu.ErrOutOfMemory:
		return CUDAErrorOutOfMemory
	case gpu.ErrInvalidValue, gpu.ErrInvalidDevicePointer:
		return CUDAErrorInvalidValue
	case gpu.ErrNoContext:
		return CUDAErrorInvalidContext
	default:
		return CUDAErrorInvalidValue
	}
}

// DriverAPI is the Driver-API surface visible to user programs. The
// wrapper's DriverModule interposes on MemAlloc, MemFree, MemGetInfo and
// CtxDestroy, mirroring its Runtime-API coverage.
type DriverAPI interface {
	// Init is cuInit: mandatory before any other call. flags must be 0.
	Init(flags uint) error
	// DeviceGet is cuDeviceGet; only ordinal 0 exists.
	DeviceGet(ordinal int) (DeviceHandle, error)
	// DeviceTotalMem is cuDeviceTotalMem.
	DeviceTotalMem(dev DeviceHandle) (bytesize.Size, error)
	// CtxCreate is cuCtxCreate: the explicit context the Driver API
	// requires ("Driver API can perform fine-grained context control").
	CtxCreate(dev DeviceHandle) error
	// CtxDestroy is cuCtxDestroy: tears the context down, releasing all
	// of the process's device memory.
	CtxDestroy() error
	// MemAlloc is cuMemAlloc.
	MemAlloc(size bytesize.Size) (DevPtr, error)
	// MemFree is cuMemFree.
	MemFree(ptr DevPtr) error
	// MemGetInfo is cuMemGetInfo.
	MemGetInfo() (free, total bytesize.Size, err error)
	// MemcpyHtoD / MemcpyDtoH are the synchronous copies.
	MemcpyHtoD(dst DevPtr, size bytesize.Size) error
	MemcpyDtoH(src DevPtr, size bytesize.Size) error
	// LaunchKernel is cuLaunchKernel.
	LaunchKernel(k Kernel, stream int) error
	// CtxSynchronize is cuCtxSynchronize.
	CtxSynchronize() error
}

// DeviceHandle is a CUdevice.
type DeviceHandle int

// Driver is the un-intercepted Driver API bound to one process.
type Driver struct {
	dev *gpu.Device
	pid int

	mu          sync.Mutex
	initialized bool
	ctxLive     bool
}

// NewDriver binds a process to the device at the driver level.
func NewDriver(dev *gpu.Device, pid int) *Driver {
	return &Driver{dev: dev, pid: pid}
}

// PID returns the owning process id.
func (d *Driver) PID() int { return d.pid }

// Device exposes the underlying simulated device (tests).
func (d *Driver) Device() *gpu.Device { return d.dev }

// Init implements DriverAPI.
func (d *Driver) Init(flags uint) error {
	if flags != 0 {
		return CUDAErrorInvalidValue
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.initialized = true
	return nil
}

func (d *Driver) requireInit() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.initialized {
		return CUDAErrorNotInitialized
	}
	return nil
}

func (d *Driver) requireCtx() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.initialized {
		return CUDAErrorNotInitialized
	}
	if !d.ctxLive {
		return CUDAErrorInvalidContext
	}
	return nil
}

// DeviceGet implements DriverAPI.
func (d *Driver) DeviceGet(ordinal int) (DeviceHandle, error) {
	if err := d.requireInit(); err != nil {
		return 0, err
	}
	if ordinal != 0 {
		return 0, CUDAErrorInvalidValue
	}
	return DeviceHandle(0), nil
}

// DeviceTotalMem implements DriverAPI.
func (d *Driver) DeviceTotalMem(dev DeviceHandle) (bytesize.Size, error) {
	if err := d.requireInit(); err != nil {
		return 0, err
	}
	if dev != 0 {
		return 0, CUDAErrorInvalidValue
	}
	return d.dev.Properties().TotalGlobalMem, nil
}

// CtxCreate implements DriverAPI.
func (d *Driver) CtxCreate(dev DeviceHandle) error {
	if err := d.requireInit(); err != nil {
		return err
	}
	if dev != 0 {
		return CUDAErrorInvalidValue
	}
	if _, err := d.dev.EnsureContext(d.pid); err != nil {
		return driverResult(err)
	}
	d.mu.Lock()
	d.ctxLive = true
	d.mu.Unlock()
	return nil
}

// CtxDestroy implements DriverAPI.
func (d *Driver) CtxDestroy() error {
	if err := d.requireCtx(); err != nil {
		return err
	}
	d.mu.Lock()
	d.ctxLive = false
	d.mu.Unlock()
	if _, err := d.dev.DestroyContext(d.pid); err != nil && err != gpu.ErrNoContext {
		return driverResult(err)
	}
	return nil
}

// MemAlloc implements DriverAPI. Unlike cudaMalloc, there is no implicit
// context creation: the Driver API demands the explicit cuCtxCreate.
func (d *Driver) MemAlloc(size bytesize.Size) (DevPtr, error) {
	if err := d.requireCtx(); err != nil {
		return 0, err
	}
	addr, err := d.dev.Alloc(d.pid, size)
	return DevPtr(addr), driverResult(err)
}

// MemFree implements DriverAPI.
func (d *Driver) MemFree(ptr DevPtr) error {
	if err := d.requireCtx(); err != nil {
		return err
	}
	_, err := d.dev.Free(d.pid, uint64(ptr))
	return driverResult(err)
}

// MemGetInfo implements DriverAPI.
func (d *Driver) MemGetInfo() (free, total bytesize.Size, err error) {
	if err := d.requireCtx(); err != nil {
		return 0, 0, err
	}
	free, total = d.dev.MemInfo()
	return free, total, nil
}

// MemcpyHtoD implements DriverAPI.
func (d *Driver) MemcpyHtoD(dst DevPtr, size bytesize.Size) error {
	if err := d.requireCtx(); err != nil {
		return err
	}
	return driverResult(d.dev.Memcpy(d.pid, uint64(dst), size))
}

// MemcpyDtoH implements DriverAPI.
func (d *Driver) MemcpyDtoH(src DevPtr, size bytesize.Size) error {
	if err := d.requireCtx(); err != nil {
		return err
	}
	return driverResult(d.dev.Memcpy(d.pid, uint64(src), size))
}

// LaunchKernel implements DriverAPI.
func (d *Driver) LaunchKernel(k Kernel, stream int) error {
	if err := d.requireCtx(); err != nil {
		return err
	}
	return driverResult(d.dev.Launch(d.pid, stream, k.Duration))
}

// CtxSynchronize implements DriverAPI.
func (d *Driver) CtxSynchronize() error {
	if err := d.requireCtx(); err != nil {
		return err
	}
	d.dev.Synchronize(d.pid)
	return nil
}

var _ DriverAPI = (*Driver)(nil)
