package cuda

import (
	"errors"
	"testing"

	"convgpu/internal/bytesize"
	"convgpu/internal/gpu"
)

func newRT(pid int) *Runtime {
	return NewRuntime(gpu.New(gpu.K20m()), pid)
}

func TestErrorStrings(t *testing.T) {
	cases := map[Error]string{
		Success:                   "cudaSuccess",
		ErrorMemoryAllocation:     "cudaErrorMemoryAllocation",
		ErrorInitializationError:  "cudaErrorInitializationError",
		ErrorInvalidValue:         "cudaErrorInvalidValue",
		ErrorInvalidDevicePointer: "cudaErrorInvalidDevicePointer",
		Error(99):                 "cudaError(99)",
	}
	for e, want := range cases {
		if got := e.Error(); got != want {
			t.Errorf("Error(%d).Error() = %q, want %q", int(e), got, want)
		}
	}
}

func TestFromDevice(t *testing.T) {
	cases := []struct {
		in   error
		want error
	}{
		{nil, nil},
		{gpu.ErrOutOfMemory, ErrorMemoryAllocation},
		{gpu.ErrInvalidValue, ErrorInvalidValue},
		{gpu.ErrInvalidDevicePointer, ErrorInvalidDevicePointer},
		{gpu.ErrNoContext, ErrorInitializationError},
		{errors.New("weird"), ErrorUnknown},
	}
	for _, c := range cases {
		if got := FromDevice(c.in); got != c.want {
			t.Errorf("FromDevice(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMallocFree(t *testing.T) {
	rt := newRT(1)
	ptr, err := rt.Malloc(bytesize.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if ptr == 0 {
		t.Fatal("Malloc returned null pointer")
	}
	if err := rt.Free(ptr); err != nil {
		t.Fatal(err)
	}
	if err := rt.Free(ptr); err != ErrorInvalidDevicePointer {
		t.Fatalf("double Free err = %v, want cudaErrorInvalidDevicePointer", err)
	}
}

func TestMallocOOM(t *testing.T) {
	rt := newRT(1)
	if _, err := rt.Malloc(6 * bytesize.GiB); err != ErrorMemoryAllocation {
		t.Fatalf("oversized Malloc err = %v, want cudaErrorMemoryAllocation", err)
	}
}

func TestMallocPitch(t *testing.T) {
	rt := newRT(1)
	ptr, pitch, err := rt.MallocPitch(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pitch != 512 {
		t.Fatalf("pitch = %v, want 512 (K20m alignment)", pitch)
	}
	size, _, ok := rt.Device().Lookup(uint64(ptr))
	if !ok || size != 512*8 {
		t.Fatalf("pitched consumption = %v (ok=%v), want 4096", size, ok)
	}
}

func TestMalloc3D(t *testing.T) {
	rt := newRT(1)
	pp, err := rt.Malloc3D(Extent{Width: 100, Height: 4, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pp.Pitch != 512 {
		t.Fatalf("3D pitch = %v, want 512", pp.Pitch)
	}
	size, _, _ := rt.Device().Lookup(uint64(pp.Ptr))
	if size != 512*4*3 {
		t.Fatalf("3D consumption = %v, want %v", size, 512*4*3)
	}
	if _, err := rt.Malloc3D(Extent{Width: 100, Height: 0, Depth: 3}); err != ErrorInvalidValue {
		t.Fatalf("degenerate extent err = %v, want cudaErrorInvalidValue", err)
	}
}

func TestMallocManagedRounding(t *testing.T) {
	rt := newRT(1)
	ptr, err := rt.MallocManaged(bytesize.MiB)
	if err != nil {
		t.Fatal(err)
	}
	size, _, _ := rt.Device().Lookup(uint64(ptr))
	if size != 128*bytesize.MiB {
		t.Fatalf("managed consumption = %v, want 128MiB", size)
	}
}

func TestMemGetInfo(t *testing.T) {
	rt := newRT(1)
	free, total, err := rt.MemGetInfo()
	if err != nil {
		t.Fatal(err)
	}
	if total != 5*bytesize.GiB || free != total {
		t.Fatalf("MemGetInfo = (%v,%v)", free, total)
	}
}

func TestGetDeviceProperties(t *testing.T) {
	rt := newRT(1)
	p, err := rt.GetDeviceProperties()
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "Tesla K20m" {
		t.Fatalf("device name = %q", p.Name)
	}
}

func TestMemcpy(t *testing.T) {
	rt := newRT(1)
	ptr, err := rt.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Memcpy(ptr, 4096, MemcpyHostToDevice); err != nil {
		t.Fatal(err)
	}
	if err := rt.Memcpy(ptr, 4096, MemcpyDeviceToHost); err != nil {
		t.Fatal(err)
	}
	if err := rt.Memcpy(ptr, 4096, MemcpyKind(0)); err != ErrorInvalidValue {
		t.Fatalf("bad kind err = %v, want cudaErrorInvalidValue", err)
	}
	if err := rt.Memcpy(ptr+1, 1, MemcpyHostToDevice); err != ErrorInvalidDevicePointer {
		t.Fatalf("bad ptr err = %v, want cudaErrorInvalidDevicePointer", err)
	}
}

func TestLaunchAndSynchronize(t *testing.T) {
	rt := newRT(1)
	if err := rt.LaunchKernel(Kernel{Name: "complement", Duration: 0}, 0); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
}

func TestUnregisterFatBinaryReleasesLeaks(t *testing.T) {
	rt := newRT(1)
	if _, err := rt.Malloc(bytesize.GiB); err != nil {
		t.Fatal(err) // deliberately leaked
	}
	if err := rt.UnregisterFatBinary(); err != nil {
		t.Fatal(err)
	}
	if used := rt.Device().Used(); used != 0 {
		t.Fatalf("device Used = %v after UnregisterFatBinary, want 0", used)
	}
	// Unregistering a process that never touched the device is a no-op.
	rt2 := NewRuntime(rt.Device(), 2)
	if err := rt2.UnregisterFatBinary(); err != nil {
		t.Fatalf("no-op UnregisterFatBinary err = %v", err)
	}
}

func TestTwoProcessesIsolated(t *testing.T) {
	dev := gpu.New(gpu.K20m())
	a := NewRuntime(dev, 1)
	b := NewRuntime(dev, 2)
	pa, err := a.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Free(pa); err != ErrorInvalidDevicePointer {
		t.Fatalf("cross-process Free err = %v, want cudaErrorInvalidDevicePointer", err)
	}
	if err := a.Free(pa); err != nil {
		t.Fatal(err)
	}
}
