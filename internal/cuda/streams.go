package cuda

import (
	"sync"
	"time"

	"convgpu/internal/bytesize"
)

// Streams and events: the part of the Runtime API that makes the K20m's
// Hyper-Q visible to programs ("it can run multiple GPU kernels
// concurrently up to 32 kernels", paper §IV-A). None of these entry
// points are in Table II — ConVGPU deliberately leaves execution
// untouched and manages memory only — so the wrapper forwards them
// verbatim (see package wrapper).

// StreamAPI is the optional stream/event surface. Runtime implements
// it; the wrapper module forwards it.
type StreamAPI interface {
	// StreamCreate is cudaStreamCreate; it returns a stream id distinct
	// from the default stream 0.
	StreamCreate() (int, error)
	// StreamDestroy is cudaStreamDestroy.
	StreamDestroy(stream int) error
	// StreamSynchronize is cudaStreamSynchronize.
	StreamSynchronize(stream int) error
	// MemcpyAsync is cudaMemcpyAsync: the transfer is queued on the
	// stream and the call returns immediately.
	MemcpyAsync(devPtr DevPtr, size bytesize.Size, kind MemcpyKind, stream int) error
	// EventCreate is cudaEventCreate.
	EventCreate() (*Event, error)
	// EventRecord is cudaEventRecord: the event completes when the work
	// queued on the stream before it drains.
	EventRecord(ev *Event, stream int) error
	// EventSynchronize is cudaEventSynchronize.
	EventSynchronize(ev *Event) error
	// EventElapsed is cudaEventElapsedTime.
	EventElapsed(start, end *Event) (time.Duration, error)
}

// Event is a cudaEvent_t.
type Event struct {
	mu       sync.Mutex
	recorded bool
	at       time.Time
}

// streamState tracks the runtime's created streams.
type streamState struct {
	mu      sync.Mutex
	nextID  int
	created map[int]bool
}

func (s *streamState) create() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.created == nil {
		s.created = make(map[int]bool)
	}
	s.nextID++
	s.created[s.nextID] = true
	return s.nextID
}

func (s *streamState) valid(stream int) bool {
	if stream == 0 {
		return true // the default stream always exists
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.created[stream]
}

func (s *streamState) destroy(stream int) bool {
	if stream == 0 {
		return false // the default stream cannot be destroyed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.created[stream] {
		return false
	}
	delete(s.created, stream)
	return true
}

// StreamCreate implements StreamAPI.
func (r *Runtime) StreamCreate() (int, error) {
	if _, err := r.dev.EnsureContext(r.pid); err != nil {
		return 0, FromDevice(err)
	}
	return r.streams.create(), nil
}

// StreamDestroy implements StreamAPI. Destroying a stream with pending
// work is legal in CUDA (the work completes); here the stream id simply
// becomes invalid for new submissions.
func (r *Runtime) StreamDestroy(stream int) error {
	if !r.streams.destroy(stream) {
		return ErrorInvalidValue
	}
	return nil
}

// StreamSynchronize implements StreamAPI.
func (r *Runtime) StreamSynchronize(stream int) error {
	if !r.streams.valid(stream) {
		return ErrorInvalidValue
	}
	r.dev.SynchronizeStream(r.pid, stream)
	return nil
}

// MemcpyAsync implements StreamAPI.
func (r *Runtime) MemcpyAsync(devPtr DevPtr, size bytesize.Size, kind MemcpyKind, stream int) error {
	switch kind {
	case MemcpyHostToDevice, MemcpyDeviceToHost, MemcpyDeviceToDevice:
	default:
		return ErrorInvalidValue
	}
	if !r.streams.valid(stream) {
		return ErrorInvalidValue
	}
	return FromDevice(r.dev.EnqueueCopy(r.pid, uint64(devPtr), size, stream))
}

// EventCreate implements StreamAPI.
func (r *Runtime) EventCreate() (*Event, error) {
	return &Event{}, nil
}

// EventRecord implements StreamAPI.
func (r *Runtime) EventRecord(ev *Event, stream int) error {
	if ev == nil || !r.streams.valid(stream) {
		return ErrorInvalidValue
	}
	at := r.dev.StreamDrainTime(r.pid, stream)
	if at.IsZero() {
		at = r.now()
	}
	ev.mu.Lock()
	ev.recorded = true
	ev.at = at
	ev.mu.Unlock()
	return nil
}

// EventSynchronize implements StreamAPI.
func (r *Runtime) EventSynchronize(ev *Event) error {
	if ev == nil {
		return ErrorInvalidValue
	}
	ev.mu.Lock()
	recorded, at := ev.recorded, ev.at
	ev.mu.Unlock()
	if !recorded {
		return ErrorInvalidValue
	}
	if wait := at.Sub(r.now()); wait > 0 {
		r.dev.Clock().Sleep(wait)
	}
	return nil
}

// EventElapsed implements StreamAPI.
func (r *Runtime) EventElapsed(start, end *Event) (time.Duration, error) {
	if start == nil || end == nil {
		return 0, ErrorInvalidValue
	}
	start.mu.Lock()
	sRec, sAt := start.recorded, start.at
	start.mu.Unlock()
	end.mu.Lock()
	eRec, eAt := end.recorded, end.at
	end.mu.Unlock()
	if !sRec || !eRec {
		return 0, ErrorInvalidValue
	}
	return eAt.Sub(sAt), nil
}

var _ StreamAPI = (*Runtime)(nil)
