package plugin

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// httpRig runs the plugin's HTTP endpoint over a real UNIX socket with
// an http.Client dialing it, the way Docker does.
type httpRig struct {
	sched  *fakeSched
	plugin *Plugin
	srv    *HTTPServer
	client *http.Client
}

func newHTTPRig(t *testing.T) *httpRig {
	t.Helper()
	dir := t.TempDir()
	sched := &fakeSched{}
	p := New(sched)
	srv, err := ServeHTTP(p, filepath.Join(dir, "p.sock"), dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	sock := srv.Addr()
	client := &http.Client{
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
				return net.Dial("unix", sock)
			},
		},
	}
	return &httpRig{sched: sched, plugin: p, srv: srv, client: client}
}

// call posts a JSON body to an endpoint and decodes the response.
func (r *httpRig) call(t *testing.T, endpoint string, body interface{}, out interface{}) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := r.client.Post("http://plugin"+endpoint, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("%s: %v", endpoint, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", endpoint, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decode: %v", endpoint, err)
		}
	}
}

func TestActivateImplementsVolumeDriver(t *testing.T) {
	r := newHTTPRig(t)
	var out map[string][]string
	r.call(t, "/Plugin.Activate", map[string]string{}, &out)
	impl := out["Implements"]
	if len(impl) != 1 || impl[0] != "VolumeDriver" {
		t.Fatalf("Implements = %v", impl)
	}
}

func TestDriverVolumeServesLibraries(t *testing.T) {
	r := newHTTPRig(t)
	var out volumeResponse
	r.call(t, "/VolumeDriver.Mount", volumeRequest{Name: DriverVolumeName, ID: "c1"}, &out)
	if out.Err != "" {
		t.Fatal(out.Err)
	}
	// The mountpoint holds the driver files ("serving a proper version
	// of binaries and library files").
	data, err := os.ReadFile(filepath.Join(out.Mountpoint, "libcuda.so.375.51"))
	if err != nil {
		t.Fatalf("driver library missing: %v", err)
	}
	if !strings.Contains(string(data), "libcuda") {
		t.Fatalf("library content = %q", data)
	}
	// Unmounting a driver volume sends no close signal.
	r.call(t, "/VolumeDriver.Unmount", volumeRequest{Name: DriverVolumeName, ID: "c1"}, &out)
	if out.Err != "" || len(r.sched.closedIDs()) != 0 {
		t.Fatalf("driver unmount: err=%q closes=%v", out.Err, r.sched.closedIDs())
	}
}

func TestExitWatchUnmountSendsClose(t *testing.T) {
	r := newHTTPRig(t)
	name := "nvidia_exitwatch_cont-42"
	var out volumeResponse
	r.call(t, "/VolumeDriver.Create", volumeRequest{Name: name}, &out)
	if out.Err != "" {
		t.Fatal(out.Err)
	}
	r.call(t, "/VolumeDriver.Mount", volumeRequest{Name: name, ID: "cont-42"}, &out)
	if out.Err != "" {
		t.Fatal(out.Err)
	}
	if r.plugin.MountedCount() != 1 {
		t.Fatalf("MountedCount = %d", r.plugin.MountedCount())
	}
	// Docker unmounts on container exit: the close signal fires.
	r.call(t, "/VolumeDriver.Unmount", volumeRequest{Name: name, ID: "cont-42"}, &out)
	if out.Err != "" {
		t.Fatal(out.Err)
	}
	closed := r.sched.closedIDs()
	if len(closed) != 1 || closed[0] != "cont-42" {
		t.Fatalf("close signals = %v", closed)
	}
}

func TestVolumeLifecycleEndpoints(t *testing.T) {
	r := newHTTPRig(t)
	var out volumeResponse
	r.call(t, "/VolumeDriver.Create", volumeRequest{Name: "extra"}, &out)
	if out.Err != "" {
		t.Fatal(out.Err)
	}
	r.call(t, "/VolumeDriver.Path", volumeRequest{Name: "extra"}, &out)
	if out.Err != "" || out.Mountpoint == "" {
		t.Fatalf("Path = %+v", out)
	}
	r.call(t, "/VolumeDriver.Get", volumeRequest{Name: "extra"}, &out)
	if out.Err != "" || out.Volume == nil || out.Volume.Name != "extra" {
		t.Fatalf("Get = %+v", out)
	}
	r.call(t, "/VolumeDriver.List", volumeRequest{}, &out)
	if len(out.Volumes) != 2 { // driver volume + extra
		t.Fatalf("List = %+v", out.Volumes)
	}
	r.call(t, "/VolumeDriver.Remove", volumeRequest{Name: "extra"}, &out)
	if out.Err != "" {
		t.Fatal(out.Err)
	}
	r.call(t, "/VolumeDriver.Get", volumeRequest{Name: "extra"}, &out)
	if out.Err == "" {
		t.Fatal("Get after Remove succeeded")
	}
}

func TestUnknownVolumeErrors(t *testing.T) {
	r := newHTTPRig(t)
	var out volumeResponse
	for _, ep := range []string{"/VolumeDriver.Mount", "/VolumeDriver.Unmount", "/VolumeDriver.Path", "/VolumeDriver.Remove"} {
		r.call(t, ep, volumeRequest{Name: "ghost"}, &out)
		if out.Err == "" {
			t.Errorf("%s on unknown volume succeeded", ep)
		}
	}
}

func TestCapabilities(t *testing.T) {
	r := newHTTPRig(t)
	var out map[string]map[string]string
	r.call(t, "/VolumeDriver.Capabilities", map[string]string{}, &out)
	if out["Capabilities"]["Scope"] != "local" {
		t.Fatalf("Capabilities = %v", out)
	}
}

func TestMalformedBody(t *testing.T) {
	r := newHTTPRig(t)
	resp, err := r.client.Post("http://plugin/VolumeDriver.Mount", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out volumeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Err == "" {
		t.Fatal("malformed body accepted")
	}
}
