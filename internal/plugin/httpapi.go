package plugin

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The real nvidia-docker-plugin is a Docker *legacy volume plugin*: an
// HTTP service on a UNIX socket speaking the /VolumeDriver.* protocol
// (paper §II-D references Docker's legacy plugin docs [20]). Docker
// calls Mount when a container using one of the plugin's volumes starts
// and Unmount when it stops — the unmount of the dummy volume is
// exactly how ConVGPU detects container exit. This file exposes the
// simulated plugin over that same protocol, so the control flow Docker
// would drive can be driven by tests and tools through real HTTP.

// volumeKind distinguishes the plugin's two volume families.
type volumeKind int

const (
	// kindDriver is a driver/CUDA binaries volume
	// (e.g. "nvidia_driver_375.51"): serves library files.
	kindDriver volumeKind = iota
	// kindExitWatch is the per-container dummy volume whose unmount is
	// the close signal.
	kindExitWatch
)

// HTTPServer serves the legacy volume plugin protocol for a Plugin.
type HTTPServer struct {
	plugin  *Plugin
	baseDir string
	ln      net.Listener
	srv     *http.Server

	mu      sync.Mutex
	volumes map[string]volumeKind
}

// DriverVolumeName is the driver-files volume the paper's plugin serves
// (driver 375.51 on the testbed).
const DriverVolumeName = "nvidia_driver_375.51"

// ServeHTTP starts the plugin's HTTP endpoint on a UNIX socket at
// socketPath, with volume mountpoints materialized under baseDir.
func ServeHTTP(p *Plugin, socketPath, baseDir string) (*HTTPServer, error) {
	if err := os.MkdirAll(baseDir, 0o755); err != nil {
		return nil, fmt.Errorf("plugin: http base dir: %w", err)
	}
	ln, err := net.Listen("unix", socketPath)
	if err != nil {
		return nil, fmt.Errorf("plugin: http listen: %w", err)
	}
	h := &HTTPServer{
		plugin:  p,
		baseDir: baseDir,
		ln:      ln,
		volumes: map[string]volumeKind{DriverVolumeName: kindDriver},
	}
	if err := h.materialize(DriverVolumeName, kindDriver); err != nil {
		ln.Close()
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/Plugin.Activate", h.activate)
	mux.HandleFunc("/VolumeDriver.Create", h.create)
	mux.HandleFunc("/VolumeDriver.Remove", h.remove)
	mux.HandleFunc("/VolumeDriver.Mount", h.mount)
	mux.HandleFunc("/VolumeDriver.Unmount", h.unmount)
	mux.HandleFunc("/VolumeDriver.Path", h.path)
	mux.HandleFunc("/VolumeDriver.Get", h.get)
	mux.HandleFunc("/VolumeDriver.List", h.list)
	mux.HandleFunc("/VolumeDriver.Capabilities", h.capabilities)
	h.srv = &http.Server{Handler: mux}
	go h.srv.Serve(ln)
	return h, nil
}

// Addr returns the socket path the plugin listens on.
func (h *HTTPServer) Addr() string { return h.ln.Addr().String() }

// Close shuts the endpoint down.
func (h *HTTPServer) Close() error { return h.srv.Close() }

// mountpoint is where a volume's files live on the host.
func (h *HTTPServer) mountpoint(name string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
	return filepath.Join(h.baseDir, "volumes", safe)
}

// materialize creates the volume's directory and, for driver volumes,
// the library files the plugin serves ("serving a proper version of
// binaries and library files to the container").
func (h *HTTPServer) materialize(name string, kind volumeKind) error {
	dir := h.mountpoint(name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if kind == kindDriver {
		for _, lib := range []string{"libcuda.so.375.51", "libnvidia-ml.so.375.51", "nvidia-smi"} {
			f := filepath.Join(dir, lib)
			if err := os.WriteFile(f, []byte("simulated "+lib+"\n"), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- protocol plumbing ---

type volumeRequest struct {
	Name string `json:"Name"`
	ID   string `json:"ID,omitempty"`
}

type volumeResponse struct {
	Mountpoint string       `json:"Mountpoint,omitempty"`
	Err        string       `json:"Err,omitempty"`
	Volumes    []volumeInfo `json:"Volumes,omitempty"`
	Volume     *volumeInfo  `json:"Volume,omitempty"`
}

type volumeInfo struct {
	Name       string `json:"Name"`
	Mountpoint string `json:"Mountpoint"`
}

func decode(w http.ResponseWriter, r *http.Request) (*volumeRequest, bool) {
	var req volumeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, volumeResponse{Err: "bad request: " + err.Error()})
		return nil, false
	}
	return &req, true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/vnd.docker.plugins.v1+json")
	json.NewEncoder(w).Encode(v)
}

func (h *HTTPServer) activate(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string][]string{"Implements": {"VolumeDriver"}})
}

func (h *HTTPServer) capabilities(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]map[string]string{"Capabilities": {"Scope": "local"}})
}

// create registers a volume. Exit-watch volumes are recognized by the
// naming convention the customized nvidia-docker uses.
func (h *HTTPServer) create(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	kind := kindDriver
	if strings.HasPrefix(req.Name, "nvidia_exitwatch_") {
		kind = kindExitWatch
	}
	h.mu.Lock()
	h.volumes[req.Name] = kind
	h.mu.Unlock()
	if err := h.materialize(req.Name, kind); err != nil {
		writeJSON(w, volumeResponse{Err: err.Error()})
		return
	}
	writeJSON(w, volumeResponse{})
}

func (h *HTTPServer) remove(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	h.mu.Lock()
	_, exists := h.volumes[req.Name]
	delete(h.volumes, req.Name)
	h.mu.Unlock()
	if !exists {
		writeJSON(w, volumeResponse{Err: "no such volume: " + req.Name})
		return
	}
	os.RemoveAll(h.mountpoint(req.Name))
	writeJSON(w, volumeResponse{})
}

// mount is called by Docker when a container using the volume starts.
// For exit-watch volumes this arms the close-signal tracking.
func (h *HTTPServer) mount(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	h.mu.Lock()
	kind, exists := h.volumes[req.Name]
	h.mu.Unlock()
	if !exists {
		writeJSON(w, volumeResponse{Err: "no such volume: " + req.Name})
		return
	}
	if kind == kindExitWatch {
		containerID := strings.TrimPrefix(req.Name, "nvidia_exitwatch_")
		h.plugin.Mount(containerID)
	}
	writeJSON(w, volumeResponse{Mountpoint: h.mountpoint(req.Name)})
}

// unmount is called by Docker when the container stops — for exit-watch
// volumes this is the moment the close signal goes to the scheduler.
func (h *HTTPServer) unmount(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	h.mu.Lock()
	kind, exists := h.volumes[req.Name]
	h.mu.Unlock()
	if !exists {
		writeJSON(w, volumeResponse{Err: "no such volume: " + req.Name})
		return
	}
	if kind == kindExitWatch {
		if err := h.plugin.Unmount(req.Name); err != nil {
			writeJSON(w, volumeResponse{Err: err.Error()})
			return
		}
	}
	writeJSON(w, volumeResponse{})
}

func (h *HTTPServer) path(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	h.mu.Lock()
	_, exists := h.volumes[req.Name]
	h.mu.Unlock()
	if !exists {
		writeJSON(w, volumeResponse{Err: "no such volume: " + req.Name})
		return
	}
	writeJSON(w, volumeResponse{Mountpoint: h.mountpoint(req.Name)})
}

func (h *HTTPServer) get(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	h.mu.Lock()
	_, exists := h.volumes[req.Name]
	h.mu.Unlock()
	if !exists {
		writeJSON(w, volumeResponse{Err: "no such volume: " + req.Name})
		return
	}
	writeJSON(w, volumeResponse{Volume: &volumeInfo{Name: req.Name, Mountpoint: h.mountpoint(req.Name)}})
}

func (h *HTTPServer) list(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	names := make([]string, 0, len(h.volumes))
	for name := range h.volumes {
		names = append(names, name)
	}
	h.mu.Unlock()
	sort.Strings(names)
	var vols []volumeInfo
	for _, name := range names {
		vols = append(vols, volumeInfo{Name: name, Mountpoint: h.mountpoint(name)})
	}
	writeJSON(w, volumeResponse{Volumes: vols})
}
