package plugin

import (
	"context"
	"strings"
	"sync"
	"testing"

	"convgpu/internal/container"
	"convgpu/internal/gpu"
	"convgpu/internal/protocol"
)

// fakeSched records close signals.
type fakeSched struct {
	mu     sync.Mutex
	closed []string
	fail   bool
}

func (f *fakeSched) Call(ctx context.Context, m *protocol.Message) (*protocol.Message, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m.Type == protocol.TypeClose {
		if f.fail {
			return &protocol.Message{Type: protocol.TypeResponse, OK: false, Error: "nope"}, nil
		}
		f.closed = append(f.closed, m.Container)
	}
	return &protocol.Message{Type: protocol.TypeResponse, OK: true}, nil
}

func (f *fakeSched) closedIDs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.closed...)
}

func TestCheckCUDAVersion(t *testing.T) {
	p := New(&fakeSched{})
	cases := []struct {
		required string
		ok       bool
	}{
		{"", true},
		{"7.5", true},
		{"8.0", true},
		{"8", true},
		{"8.1", false},
		{"9.0", false},
		{"banana", false},
		{"", true},
	}
	for _, c := range cases {
		err := p.CheckCUDAVersion(c.required)
		if (err == nil) != c.ok {
			t.Errorf("CheckCUDAVersion(%q) err = %v, want ok=%v", c.required, err, c.ok)
		}
	}
}

func TestCheckCUDAVersionCustomHost(t *testing.T) {
	p := New(&fakeSched{})
	p.SetHostCUDAVersion("9.2")
	if err := p.CheckCUDAVersion("9.1"); err != nil {
		t.Errorf("9.1 on 9.2 host: %v", err)
	}
	if err := p.CheckCUDAVersion("10.0"); err == nil {
		t.Error("10.0 on 9.2 host accepted")
	}
	p.SetHostCUDAVersion("garbage")
	if err := p.CheckCUDAVersion("8.0"); err == nil {
		t.Error("garbage host version accepted")
	}
}

func TestMountUnmountSendsClose(t *testing.T) {
	f := &fakeSched{}
	p := New(f)
	name := p.Mount("cont-1")
	if !strings.Contains(name, "cont-1") {
		t.Fatalf("volume name %q does not identify the container", name)
	}
	if p.MountedCount() != 1 {
		t.Fatalf("MountedCount = %d", p.MountedCount())
	}
	if err := p.Unmount(name); err != nil {
		t.Fatal(err)
	}
	if got := f.closedIDs(); len(got) != 1 || got[0] != "cont-1" {
		t.Fatalf("close signals = %v", got)
	}
	if p.MountedCount() != 0 || p.ClosedCount() != 1 {
		t.Fatalf("counts = (%d,%d)", p.MountedCount(), p.ClosedCount())
	}
	// Unknown volume: ignored.
	if err := p.Unmount("nvidia_driver_375.51"); err != nil {
		t.Fatal(err)
	}
	if len(f.closedIDs()) != 1 {
		t.Fatal("unknown unmount sent a close")
	}
}

func TestUnmountSchedulerRejection(t *testing.T) {
	f := &fakeSched{fail: true}
	p := New(f)
	name := p.Mount("c")
	if err := p.Unmount(name); err == nil {
		t.Fatal("rejected close reported success")
	}
	if p.ClosedCount() != 0 {
		t.Fatal("rejected close counted as delivered")
	}
}

func TestWatchDeliversCloseOnExit(t *testing.T) {
	f := &fakeSched{}
	p := New(f)
	eng, err := container.NewEngine(container.Config{Device: gpu.New(gpu.K20m())})
	if err != nil {
		t.Fatal(err)
	}
	c, err := eng.Create(container.Spec{Name: "w1", Program: func(pr *container.Proc) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	p.Watch(c)
	if p.MountedCount() != 1 {
		t.Fatal("Watch did not mount the dummy volume")
	}
	c.Start()
	c.Wait()
	if got := f.closedIDs(); len(got) != 1 || got[0] != "w1" {
		t.Fatalf("close signals after exit = %v", got)
	}
}

func TestWatchFiresEvenOnProgramError(t *testing.T) {
	f := &fakeSched{}
	p := New(f)
	eng, _ := container.NewEngine(container.Config{Device: gpu.New(gpu.K20m())})
	c, _ := eng.Create(container.Spec{Name: "w2", Program: func(pr *container.Proc) error { panic("dead") }})
	p.Watch(c)
	c.Start()
	c.Wait()
	if got := f.closedIDs(); len(got) != 1 {
		t.Fatalf("close signals after crash = %v", got)
	}
}
