// Package plugin simulates nvidia-docker-plugin, the Docker volume
// plugin half of NVIDIA Docker (paper §II-D, §III-B). Its two jobs in
// ConVGPU's architecture:
//
//   - serve the driver/CUDA volumes an image declares it needs (modeled
//     as a version check of the image's com.nvidia.cuda.version label
//     against the host CUDA version, plus a named volume per container);
//   - detect container exit: the customized nvidia-docker mounts a dummy
//     volume owned by this plugin into every container; when the
//     container stops for any reason Docker unmounts it, and the plugin
//     sends the *close* signal for that container to the GPU memory
//     scheduler.
package plugin

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"convgpu/internal/container"
	"convgpu/internal/protocol"
)

// HostCUDAVersion is the CUDA toolkit version of the paper's testbed.
const HostCUDAVersion = "8.0"

// Caller sends a message to the scheduler's control socket.
type Caller interface {
	Call(ctx context.Context, m *protocol.Message) (*protocol.Message, error)
}

// Plugin is a running nvidia-docker-plugin instance.
type Plugin struct {
	sched       Caller
	hostVersion string

	mu      sync.Mutex
	mounted map[string]string // volume name -> container id
	closedN int
}

// New creates a plugin that reports container exits to sched.
func New(sched Caller) *Plugin {
	return &Plugin{sched: sched, hostVersion: HostCUDAVersion, mounted: make(map[string]string)}
}

// SetHostCUDAVersion overrides the host toolkit version (tests).
func (p *Plugin) SetHostCUDAVersion(v string) { p.hostVersion = v }

// CheckCUDAVersion verifies the host can serve an image that requires
// the given CUDA version (empty means no requirement). The paper's
// plugin serves "a proper version of binaries and library files"; a
// newer-than-host requirement is unsatisfiable.
func (p *Plugin) CheckCUDAVersion(required string) error {
	if required == "" {
		return nil
	}
	reqMaj, reqMin, err := parseVersion(required)
	if err != nil {
		return fmt.Errorf("plugin: bad required CUDA version %q: %v", required, err)
	}
	hostMaj, hostMin, err := parseVersion(p.hostVersion)
	if err != nil {
		return fmt.Errorf("plugin: bad host CUDA version %q: %v", p.hostVersion, err)
	}
	if reqMaj > hostMaj || (reqMaj == hostMaj && reqMin > hostMin) {
		return fmt.Errorf("plugin: image requires CUDA %s but host has %s", required, p.hostVersion)
	}
	return nil
}

func parseVersion(v string) (major, minor int, err error) {
	parts := strings.SplitN(strings.TrimSpace(v), ".", 3)
	if len(parts) < 1 || parts[0] == "" {
		return 0, 0, fmt.Errorf("empty version")
	}
	major, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, err
	}
	if len(parts) > 1 {
		minor, err = strconv.Atoi(parts[1])
		if err != nil {
			return 0, 0, err
		}
	}
	return major, minor, nil
}

// DummyVolumeName names the exit-detection volume for a container.
func (p *Plugin) DummyVolumeName(containerID string) string {
	return "nvidia_exitwatch_" + containerID
}

// Mount records the dummy volume as mounted into the container.
func (p *Plugin) Mount(containerID string) string {
	name := p.DummyVolumeName(containerID)
	p.mu.Lock()
	p.mounted[name] = containerID
	p.mu.Unlock()
	return name
}

// MountedCount reports how many dummy volumes are currently mounted.
func (p *Plugin) MountedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.mounted)
}

// ClosedCount reports how many close signals the plugin has delivered.
func (p *Plugin) ClosedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closedN
}

// Unmount handles Docker unmounting the dummy volume — the container
// exited — by sending the close signal to the scheduler. Unknown volumes
// are ignored (Docker unmounts driver volumes too).
func (p *Plugin) Unmount(volumeName string) error {
	p.mu.Lock()
	id, ok := p.mounted[volumeName]
	if ok {
		delete(p.mounted, volumeName)
	}
	p.mu.Unlock()
	if !ok {
		return nil
	}
	resp, err := p.sched.Call(context.Background(), &protocol.Message{
		Type: protocol.TypeClose, Container: id,
	})
	if err != nil {
		return fmt.Errorf("plugin: close signal for %s: %w", id, err)
	}
	if !resp.OK {
		return fmt.Errorf("plugin: close signal for %s rejected: %s", id, resp.Error)
	}
	p.mu.Lock()
	p.closedN++
	p.mu.Unlock()
	return nil
}

// Watch arms exit detection for a created container: when the container
// exits, Docker unmounts the dummy volume and the plugin delivers the
// close signal.
func (p *Plugin) Watch(c *container.Container) {
	name := p.Mount(c.ID())
	c.OnExit(func(c *container.Container, runErr error) {
		// Failure to deliver close is logged by returning it to the
		// hook's error sink; the scheduler's idempotent close means a
		// retry by the operator is always safe.
		p.Unmount(name)
	})
}
