package convgpu_test

import (
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
	"convgpu/internal/cluster"
	"convgpu/internal/container"
	"convgpu/internal/core"
	"convgpu/internal/ipc"
	"convgpu/internal/multigpu"
	"convgpu/internal/nvdocker"
	"convgpu/internal/plugin"
	"convgpu/internal/sim"
	"convgpu/internal/workload"
)

// newNVDocker wires a customized nvidia-docker to an engine and a
// scheduler control client for the Fig. 5 benchmarks.
func newNVDocker(eng *container.Engine, ctl *ipc.Client) *nvdocker.NVDocker {
	return nvdocker.New(eng, ctl, plugin.New(ctl))
}

func nvOptions(img container.Image, limit bytesize.Size, prog container.Program) nvdocker.Options {
	return nvdocker.Options{Image: img, NvidiaMemory: limit, Program: prog}
}

// runMultiGPU replays a trace over an n-GPU scheduler (least-loaded
// placement, Best-Fit redistribution) in virtual time.
func runMultiGPU(trace []workload.TraceEntry, n int) (sim.Result, error) {
	clk := clock.NewManual()
	sched, err := multigpu.New(multigpu.Config{
		Devices:           n,
		CapacityPerDevice: 5 * bytesize.GiB,
		Algorithm:         core.AlgBestFit,
		Policy:            multigpu.LeastLoaded{},
		Clock:             clk,
	})
	if err != nil {
		return sim.Result{}, err
	}
	return sim.RunWith(trace, sched, clk, sim.Config{})
}

// runCluster replays a trace over an n-node (1 GPU each) cluster with
// the spread strategy in virtual time.
func runCluster(trace []workload.TraceEntry, n int) (sim.Result, error) {
	clk := clock.NewManual()
	cl, err := cluster.New(cluster.Config{
		Nodes:          n,
		GPUsPerNode:    1,
		CapacityPerGPU: 5 * bytesize.GiB,
		Algorithm:      core.AlgBestFit,
		Strategy:       cluster.Spread{},
		Clock:          clk,
	})
	if err != nil {
		return sim.Result{}, err
	}
	return sim.RunWith(trace, cl, clk, sim.Config{})
}

// runSimTrace replays a fresh Best-Fit trace with custom arrival spacing.
func runSimTrace(n int, spacing time.Duration) (sim.Result, error) {
	trace := workload.GenerateTrace(n, spacing, 42)
	return sim.Run(trace, sim.Config{Algorithm: core.AlgBestFit})
}
