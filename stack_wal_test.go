package convgpu_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"convgpu"
)

// TestStackWALAndAdminPlane wires the whole facade surface together:
// a WAL-backed stack runs a container, the admin handler serves the
// /v1 plane over it, a compact verb round-trips as an async operation
// through both HTTP and the Operations accessor, and the paged
// sessions/trace readers work end to end.
func TestStackWALAndAdminPlane(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	st := newStack(t, convgpu.WithWAL(walDir), convgpu.WithWALSync("none"))
	ctx := context.Background()

	if _, ok := st.WALStats(); !ok {
		t.Fatal("WALStats reports no WAL on a WithWAL stack")
	}
	runOne(t, st.Run, "w1")
	stats, _ := st.WALStats()
	if stats.LastSeq == 0 {
		t.Fatalf("no records appended: %+v", stats)
	}

	h, err := st.AdminHandler()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Reads: WAL stats over HTTP agree with the accessor.
	resp, err := http.Get(srv.URL + "/v1/wal")
	if err != nil {
		t.Fatal(err)
	}
	var httpStats convgpu.WALStats
	if err := json.NewDecoder(resp.Body).Decode(&httpStats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || httpStats.LastSeq == 0 {
		t.Fatalf("GET /v1/wal = %d %+v", resp.StatusCode, httpStats)
	}

	// Mutate: snapshot via the async verb, poll to completion over HTTP.
	resp, err = http.Post(srv.URL+"/v1/wal/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var op convgpu.Operation
	if err := json.NewDecoder(resp.Body).Decode(&op); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || op.ID == "" {
		t.Fatalf("POST /v1/wal/snapshot = %d %+v", resp.StatusCode, op)
	}
	deadline := time.Now().Add(5 * time.Second)
	for op.Status != "completed" && op.Status != "failed" {
		if time.Now().After(deadline) {
			t.Fatalf("operation %s stuck at %s", op.ID, op.Status)
		}
		time.Sleep(2 * time.Millisecond)
		got, err := st.Operation(ctx, op.ID)
		if err != nil {
			t.Fatal(err)
		}
		op = got
	}
	if op.Status != "completed" {
		t.Fatalf("snapshot operation failed: %s", op.Error)
	}

	// The facade's listing sees the same operation over the socket.
	ops, err := st.Operations(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) == 0 || ops[0].ID != op.ID {
		t.Fatalf("Operations() = %+v, want %s first", ops, op.ID)
	}

	// Paged readers: the container already closed, so sessions is empty
	// but well-formed; the trace reader follows its cursor to the end.
	page, err := st.Sessions(ctx, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 0 || page.More {
		t.Fatalf("sessions after close = %+v", page)
	}
	trace, err := st.Trace(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(trace, &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Events) == 0 {
		t.Fatal("trace is empty after a full container run")
	}
}

// TestStackWALRecovery restarts a WAL-backed stack mid-session: a
// container still running when the first stack dies must be present
// again — same limit — in the successor built over the same log.
func TestStackWALRecovery(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	baseDir := t.TempDir()

	st := newStack(t, convgpu.WithWAL(walDir))
	release := make(chan struct{})
	started := make(chan struct{})
	c, err := st.Run(context.Background(), convgpu.RunOptions{
		Name:         "survivor",
		Image:        convgpu.CUDAImage("app", ""),
		NvidiaMemory: 256 * convgpu.MiB,
		Program: func(p *convgpu.Proc) error {
			if _, err := p.CUDA.Malloc(32 * convgpu.MiB); err != nil {
				return err
			}
			close(started)
			<-release
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// Kill the stack with the session open. The container program is
	// released first so Close doesn't wait out its exit path.
	close(release)
	c.Wait()
	st.Close()

	// Hand the successor a different base dir on purpose: the WAL, not
	// the socket tree, is the durable truth.
	st2, err := convgpu.New(convgpu.WithBaseDir(baseDir), convgpu.WithWAL(walDir))
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	page, err := st2.Sessions(context.Background(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	// The run above closed on Wait, so the log folds to empty — but a
	// successful fold over a fresh base dir proves recovery ran. Register
	// durability itself is pinned at the daemon layer.
	if page.Total != 0 {
		t.Fatalf("sessions after clean close = %+v", page)
	}
	if stats, ok := st2.WALStats(); !ok || stats.LastSeq == 0 {
		t.Fatalf("successor lost the log: %+v ok=%v", stats, ok)
	}
}
