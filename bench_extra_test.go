package convgpu_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/cuda"
	"convgpu/internal/gpu"
	"convgpu/internal/inproc"
	"convgpu/internal/plugin"
	"convgpu/internal/protocol"
	"convgpu/internal/wrapper"
)

// --- Driver-API path (paper §III-C dual coverage) ---

// BenchmarkDriverAPIMallocWithConVGPU measures the cuMemAlloc+cuMemFree
// cycle through the wrapper's Driver-API coverage, in-process transport.
func BenchmarkDriverAPIMallocWithConVGPU(b *testing.B) {
	st, err := core.New(core.Config{Capacity: 5 * bytesize.GiB})
	if err != nil {
		b.Fatal(err)
	}
	hub := inproc.NewHub(st)
	if _, err := hub.Register("d", bytesize.GiB); err != nil {
		b.Fatal(err)
	}
	dev := gpu.New(gpu.K20m())
	mod := wrapper.NewDriver(cuda.NewDriver(dev, 1), hub.Caller("d"), 1)
	if err := mod.Init(0); err != nil {
		b.Fatal(err)
	}
	if err := mod.CtxCreate(0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptr, err := mod.MemAlloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		if err := mod.MemFree(ptr); err != nil {
			b.Fatal(err)
		}
		if i%256 == 255 {
			// The free reports are fire-and-forget; a tight loop must
			// periodically let them drain or scheduler-side usage
			// climbs to the limit.
			mod.Flush()
		}
	}
	b.StopTimer()
	mod.Flush()
}

// BenchmarkStreamLaunch measures the pass-through kernel launch path —
// the part ConVGPU leaves untouched.
func BenchmarkStreamLaunch(b *testing.B) {
	st, err := core.New(core.Config{Capacity: 5 * bytesize.GiB})
	if err != nil {
		b.Fatal(err)
	}
	hub := inproc.NewHub(st)
	if _, err := hub.Register("s", bytesize.GiB); err != nil {
		b.Fatal(err)
	}
	dev := gpu.New(gpu.K20m())
	mod := wrapper.New(cuda.NewRuntime(dev, 1), hub.Caller("s"), 1)
	if _, err := mod.Malloc(4096); err != nil {
		b.Fatal(err) // create the context outside the loop
	}
	k := cuda.Kernel{Name: "bench", Duration: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mod.LaunchKernel(k, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Docker legacy volume plugin HTTP path ---

type nopSched struct{}

func (nopSched) Call(ctx context.Context, m *protocol.Message) (*protocol.Message, error) {
	return &protocol.Message{Type: protocol.TypeResponse, OK: true}, nil
}

// BenchmarkPluginHTTPMountUnmount measures a Docker mount+unmount round
// trip against the plugin's HTTP endpoint over a UNIX socket.
func BenchmarkPluginHTTPMountUnmount(b *testing.B) {
	dir := b.TempDir()
	p := plugin.New(nopSched{})
	srv, err := plugin.ServeHTTP(p, filepath.Join(dir, "p.sock"), dir)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	sock := srv.Addr()
	client := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return net.Dial("unix", sock)
		},
	}}
	post := func(endpoint string, body interface{}) error {
		buf, _ := json.Marshal(body)
		resp, err := client.Post("http://p"+endpoint, "application/json", bytes.NewReader(buf))
		if err != nil {
			return err
		}
		resp.Body.Close()
		return nil
	}
	if err := post("/VolumeDriver.Create", map[string]string{"Name": "nvidia_exitwatch_bench"}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := post("/VolumeDriver.Mount", map[string]string{"Name": "nvidia_exitwatch_bench", "ID": "c"}); err != nil {
			b.Fatal(err)
		}
		if err := post("/VolumeDriver.Unmount", map[string]string{"Name": "nvidia_exitwatch_bench", "ID": "c"}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Sensitivity / extension benches ---

// BenchmarkSensitivityTightArrivals runs the 2s-spacing heavy-contention
// point of the sensitivity extension.
func BenchmarkSensitivityTightArrivals(b *testing.B) {
	benchTrace(b, 30, 2*time.Second)
}

func benchTrace(b *testing.B, n int, spacing time.Duration) {
	b.Helper()
	var finish time.Duration
	for i := 0; i < b.N; i++ {
		res, err := runSimTrace(n, spacing)
		if err != nil {
			b.Fatal(err)
		}
		finish = res.FinishTime
	}
	b.ReportMetric(finish.Seconds(), "finish_s")
}
