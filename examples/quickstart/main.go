// Quickstart: run one GPU container through the full ConVGPU stack.
//
// The example assembles the middleware (simulated K20m, scheduler daemon
// over real UNIX sockets, container engine, customized nvidia-docker and
// the volume plugin), then launches a container with a 512 MiB GPU
// memory limit. Inside the container, every CUDA call goes through the
// wrapper module: the program sees a GPU whose "total memory" is its
// limit, allocations are accounted by the host-side scheduler, and
// everything is cleaned up when the container exits.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"convgpu"
)

func main() {
	ctx := context.Background()
	sys, err := convgpu.New() // 5 GiB K20m, FIFO; see With... options
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Start(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduler up (capacity %v), control socket %s\n",
		5*convgpu.GiB, sys.ControlSocket())

	c, err := sys.Run(ctx, convgpu.RunOptions{
		Name:         "quickstart",
		Image:        convgpu.CUDAImage("my-cuda-app:latest", ""),
		NvidiaMemory: 512 * convgpu.MiB, // the --nvidia-memory option
		Program: func(p *convgpu.Proc) error {
			// This function is the "user program inside the container".
			// p.CUDA is the CUDA runtime — already interposed by the
			// wrapper module via the LD_PRELOAD seam.
			free, total, err := p.CUDA.MemGetInfo()
			if err != nil {
				return err
			}
			fmt.Printf("inside container: GPU reports %v free of %v total (the limit!)\n", free, total)

			ptr, err := p.CUDA.Malloc(128 * convgpu.MiB)
			if err != nil {
				return err
			}
			fmt.Printf("allocated 128MiB at %#x\n", uint64(ptr))

			free, _, _ = p.CUDA.MemGetInfo()
			fmt.Printf("after allocation: %v free (128MiB + 66MiB CUDA context accounted)\n", free)

			// Asking for more than the limit fails the way a full GPU
			// would — but only for THIS container.
			if _, err := p.CUDA.Malloc(512 * convgpu.MiB); err != nil {
				fmt.Printf("over-limit allocation correctly denied: %v\n", err)
			}
			return p.CUDA.Free(ptr)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		log.Fatalf("container failed: %v", err)
	}

	fmt.Printf("container exited; scheduler pool back to %v, device holds %v\n",
		sys.PoolFree(), sys.Device().Used())

	// The stack gathered telemetry while it scheduled: ask the live
	// daemon over its control socket (also served on HTTP via
	// MetricsHandler, or from the CLI via cmd/convgpu-stats).
	counts := sys.Observability().EventCounts()
	fmt.Printf("scheduler events: %d accepts, %d rejects\n",
		counts["accept"], counts["reject"])
}
