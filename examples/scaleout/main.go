// Scaleout: the paper's future work (§V), running.
//
// "Our future work will extend the ConVGPU in a multiple GPU ... Our
// further step is to adopt the ConVGPU in the clustering system like
// Docker Swarm." This example replays one contended cloud trace against
// both extensions: the same containers scheduled over 1, 2 and 4 GPUs
// (per placement policy), then over 1, 2 and 4 single-GPU Swarm-style
// nodes (per strategy), in virtual time.
//
//	go run ./examples/scaleout
package main

import (
	"fmt"
	"log"
	"time"

	"convgpu"
)

func main() {
	const n = 32
	trace := convgpu.GenerateTrace(n, 5*time.Second, 1234)
	fmt.Printf("trace: %d containers, random Table III types, 5s arrivals\n\n", n)

	fmt.Println("multi-GPU extension — finished time by placement policy:")
	fmt.Printf("  %-12s", "policy")
	for _, d := range []int{1, 2, 4} {
		fmt.Printf("  %6d GPU(s)", d)
	}
	fmt.Println()
	for _, pol := range convgpu.MultiGPUPolicies() {
		fmt.Printf("  %-12s", pol)
		for _, devices := range []int{1, 2, 4} {
			res, err := convgpu.SimulateMultiGPU(trace, devices, pol, convgpu.BestFit)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %12.1fs", res.FinishTime.Seconds())
		}
		fmt.Println()
	}

	fmt.Println("\ncluster extension — finished time by Swarm strategy:")
	fmt.Printf("  %-12s", "strategy")
	for _, d := range []int{1, 2, 4} {
		fmt.Printf("  %6d node(s)", d)
	}
	fmt.Println()
	for _, strat := range convgpu.ClusterStrategies() {
		fmt.Printf("  %-12s", strat)
		for _, nodes := range []int{1, 2, 4} {
			res, err := convgpu.SimulateCluster(trace, nodes, strat, convgpu.BestFit)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %12.1fs", res.FinishTime.Seconds())
		}
		fmt.Println()
	}

	fmt.Println("\n(the floor is the 160s arrival span: containers keep arriving every 5s)")
}
