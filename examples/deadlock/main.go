// Deadlock: the failure ConVGPU exists to prevent (paper §I).
//
// NVIDIA Docker hands the whole GPU to every container and "does not
// care how the user program inside the container uses GPU" — so when two
// containers each need most of the device memory, one of them simply
// fails with cudaErrorMemoryAllocation. This example shows that failure
// on the raw device, then the same pair of workloads completing under
// ConVGPU, where the second container's allocation is paused instead of
// failed.
//
//	go run ./examples/deadlock
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"convgpu"
)

const want = 4 * convgpu.GiB // two of these cannot share a 5 GiB GPU

func main() {
	fmt.Println("scenario: two containers, each needing 4 GiB of a 5 GiB GPU")
	fmt.Println()
	withoutConVGPU()
	fmt.Println()
	withConVGPU()
}

// withoutConVGPU shares the raw device the way plain NVIDIA Docker does.
func withoutConVGPU() {
	fmt.Println("--- without ConVGPU (plain NVIDIA Docker sharing) ---")
	dev := convgpu.RawDevice()
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rt := convgpu.RawCUDA(dev, i)
			if i == 2 {
				<-gate // let container 1 win deterministically
			}
			ptr, err := rt.Malloc(want)
			if i == 1 {
				close(gate)
			}
			if err != nil {
				fmt.Printf("container %d: PROGRAM FAILURE: %v\n", i, err)
				return
			}
			fmt.Printf("container %d: allocated 4GiB, training...\n", i)
			time.Sleep(50 * time.Millisecond)
			rt.Free(ptr)
			rt.UnregisterFatBinary()
			fmt.Printf("container %d: done\n", i)
		}(i)
	}
	wg.Wait()
}

// withConVGPU runs the same demands through the full middleware stack.
func withConVGPU() {
	fmt.Println("--- with ConVGPU ---")
	sys, err := convgpu.NewSystem(convgpu.Config{Algorithm: convgpu.FIFO})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	job := func(i int) *convgpu.Container {
		c, err := sys.Run(convgpu.RunOptions{
			Name:         fmt.Sprintf("job-%d", i),
			Image:        convgpu.CUDAImage("trainer", ""),
			NvidiaMemory: want + 66*convgpu.MiB,
			Program: func(p *convgpu.Proc) error {
				start := time.Now()
				ptr, err := p.CUDA.Malloc(want)
				if err != nil {
					return err
				}
				if waited := time.Since(start); waited > 10*time.Millisecond {
					fmt.Printf("container %d: allocation was PAUSED %v, then granted\n", i, waited.Round(time.Millisecond))
				} else {
					fmt.Printf("container %d: allocated immediately\n", i)
				}
				time.Sleep(50 * time.Millisecond) // training
				return p.CUDA.Free(ptr)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	c1 := job(1)
	time.Sleep(10 * time.Millisecond) // container 1 allocates first
	c2 := job(2)
	if err := c1.Wait(); err != nil {
		log.Fatalf("container 1 failed: %v", err)
	}
	if err := c2.Wait(); err != nil {
		log.Fatalf("container 2 failed: %v", err)
	}
	fmt.Println("both containers completed — no failure, no deadlock")
}
