// Hyperq: concurrent kernels inside a ConVGPU-managed container.
//
// The paper's testbed GPU supports Hyper-Q ("it can run multiple GPU
// kernels concurrently up to 32 kernels", §IV-A), and ConVGPU manages
// only memory — streams, events and kernel launches pass through the
// wrapper untouched. This example runs one container that launches the
// same work serially (one stream) and concurrently (eight streams) and
// measures both with CUDA events, all under a ConVGPU memory limit.
//
//	go run ./examples/hyperq
package main

import (
	"fmt"
	"log"
	"time"

	"convgpu"
)

func main() {
	sys, err := convgpu.NewSystem(convgpu.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	const kernels = 8
	const kernelTime = 100 * time.Millisecond

	c, err := sys.Run(convgpu.RunOptions{
		Name:         "hyperq-demo",
		Image:        convgpu.CUDAImage("bench", ""),
		NvidiaMemory: 1 * convgpu.GiB,
		Program: func(p *convgpu.Proc) error {
			// The wrapper forwards the stream surface verbatim.
			streams, ok := p.CUDA.(convgpu.CUDAStreams)
			if !ok {
				return fmt.Errorf("runtime lacks stream support")
			}
			buf, err := p.CUDA.Malloc(64 * convgpu.MiB)
			if err != nil {
				return err
			}
			defer p.CUDA.Free(buf)

			measure := func(nStreams int) (time.Duration, error) {
				ids := make([]int, nStreams)
				for i := range ids {
					s, err := streams.StreamCreate()
					if err != nil {
						return 0, err
					}
					ids[i] = s
				}
				start, _ := streams.EventCreate()
				if err := streams.EventRecord(start, ids[0]); err != nil {
					return 0, err
				}
				for i := 0; i < kernels; i++ {
					s := ids[i%nStreams]
					if err := p.CUDA.LaunchKernel(convgpu.Kernel{
						Name: fmt.Sprintf("work-%d", i), Duration: kernelTime,
					}, s); err != nil {
						return 0, err
					}
				}
				var longest time.Duration
				for _, s := range ids {
					end, _ := streams.EventCreate()
					if err := streams.EventRecord(end, s); err != nil {
						return 0, err
					}
					if err := streams.StreamSynchronize(s); err != nil {
						return 0, err
					}
					if d, err := streams.EventElapsed(start, end); err == nil && d > longest {
						longest = d
					}
					streams.StreamDestroy(s)
				}
				return longest, nil
			}

			serial, err := measure(1)
			if err != nil {
				return err
			}
			concurrent, err := measure(kernels)
			if err != nil {
				return err
			}
			fmt.Printf("%d kernels x %v each:\n", kernels, kernelTime)
			fmt.Printf("  one stream (serialized):     %v\n", serial.Round(time.Millisecond))
			fmt.Printf("  %d streams (Hyper-Q overlap): %v\n", kernels, concurrent.Round(time.Millisecond))
			fmt.Printf("  speedup: x%.1f\n", float64(serial)/float64(concurrent))
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		log.Fatal(err)
	}
}
