// Multitenant: the paper's Figure 3 walkthrough, live.
//
// Four containers (A-D) share one 1000 MiB GPU (sizes scaled from the
// figure). A and B fill most of the memory; C gets a partial assignment
// at creation and suspends when it outgrows it; D gets nothing and
// suspends immediately. When B terminates, the scheduler guarantees C
// everything it requested at creation time and hands the remainder to D
// — which stays suspended, exactly as in Fig. 3d, until A finishes too.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"convgpu"
)

func main() {
	sys, err := convgpu.NewSystem(convgpu.Config{
		Capacity:  1000 * convgpu.MiB,
		Algorithm: convgpu.FIFO,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	var mu sync.Mutex
	logf := func(format string, args ...interface{}) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Printf(format+"\n", args...)
	}
	status := func(stage string) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Printf("--- %s ---\n", stage)
		for _, info := range sys.Snapshot() {
			state := "running"
			if info.Suspended {
				state = "SUSPENDED"
			}
			fmt.Printf("  %s: limit=%v grant=%v used=%v %s\n",
				info.ID, info.Limit, info.Grant, info.Used, state)
		}
		fmt.Printf("  pool free: %v\n", sys.PoolFree())
	}

	image := convgpu.CUDAImage("tenant", "")
	releaseA := make(chan struct{})
	releaseB := make(chan struct{})

	// holder runs a tenant that allocates its whole budget and waits.
	holder := func(name string, alloc convgpu.Size, release chan struct{}) *convgpu.Container {
		c, err := sys.Run(convgpu.RunOptions{
			Name: name, Image: image, NvidiaMemory: alloc + 66*convgpu.MiB,
			Program: func(p *convgpu.Proc) error {
				ptr, err := p.CUDA.Malloc(alloc)
				if err != nil {
					return err
				}
				logf("%s: allocated %v", name, alloc)
				<-release
				return p.CUDA.Free(ptr)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	// Fig. 3a: A and B run on the GPU.
	a := holder("A", 600*convgpu.MiB, releaseA) // the long-running big tenant
	b := holder("B", 150*convgpu.MiB, releaseB) // the one that terminates first
	waitAllocated(sys, 2)
	status("Fig. 3a: A and B running")

	// Fig. 3b/3c: C requests more than remains; it runs within its
	// partial assignment, then suspends when it allocates beyond it.
	cDone := make(chan error, 1)
	c, err := sys.Run(convgpu.RunOptions{
		Name: "C", Image: image, NvidiaMemory: 250 * convgpu.MiB,
		Program: func(p *convgpu.Proc) error {
			small, err := p.CUDA.Malloc(50 * convgpu.MiB)
			if err != nil {
				return err
			}
			logf("C: first 50MiB fits the partial assignment (Fig. 3b)")
			// This one exceeds the assigned memory but not C's request:
			// the call blocks until the scheduler grants more (Fig. 3c).
			logf("C: asking for 120MiB more — suspending...")
			big, err := p.CUDA.Malloc(120 * convgpu.MiB)
			if err != nil {
				return err
			}
			logf("C: resumed! the 120MiB arrived (Fig. 3d)")
			p.CUDA.Free(big)
			return p.CUDA.Free(small)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	go func() { cDone <- c.Wait() }()

	// Fig. 3c: D arrives with nothing assigned; suspends immediately.
	dDone := make(chan error, 1)
	d, err := sys.Run(convgpu.RunOptions{
		Name: "D", Image: image, NvidiaMemory: 200 * convgpu.MiB,
		Program: func(p *convgpu.Proc) error {
			logf("D: asking for 100MiB with zero assignment — suspending...")
			ptr, err := p.CUDA.Malloc(100 * convgpu.MiB)
			if err != nil {
				return err
			}
			logf("D: resumed — enough memory finally freed")
			return p.CUDA.Free(ptr)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	go func() { dDone <- d.Wait() }()

	waitSuspended(sys, 2)
	status("Fig. 3c: C and D suspended")

	// Fig. 3d: B terminates; FIFO guarantees C its full request, D stays
	// suspended on the leftovers.
	close(releaseB)
	if err := b.Wait(); err != nil {
		log.Fatal(err)
	}
	if err := <-cDone; err != nil {
		log.Fatalf("C failed: %v", err)
	}
	status("Fig. 3d: B gone, C resumed (D follows once enough memory frees)")

	// A terminates too; every tenant drains.
	close(releaseA)
	if err := a.Wait(); err != nil {
		log.Fatal(err)
	}
	if err := <-dDone; err != nil {
		log.Fatalf("D failed: %v", err)
	}
	status("final: everyone done")
}

func waitAllocated(sys *convgpu.System, n int) {
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		count := 0
		for _, info := range sys.Snapshot() {
			if info.Used > 0 {
				count++
			}
		}
		if count >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	log.Fatal("timed out waiting for allocations")
}

func waitSuspended(sys *convgpu.System, n int) {
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		count := 0
		for _, info := range sys.Snapshot() {
			if info.Suspended {
				count++
			}
		}
		if count >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	log.Fatal("timed out waiting for suspensions")
}
