// Cloudsim: compare the four scheduling algorithms on an emulated cloud.
//
// This is the paper's Section IV-C methodology as a library user would
// consume it: generate a randomized trace of AWS-T2-style containers
// (Table III) arriving every five seconds, replay it in virtual time
// under each algorithm, and compare total finish time (Fig. 7) against
// average per-container suspension (Fig. 8).
//
//	go run ./examples/cloudsim
//	go run ./examples/cloudsim -n 38 -reps 6
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"convgpu"
)

func main() {
	n := flag.Int("n", 30, "containers per run")
	reps := flag.Int("reps", 4, "repetitions (fresh random trace each)")
	seed := flag.Int64("seed", 2017, "base trace seed")
	flag.Parse()

	fmt.Printf("emulated cloud: %d containers, random Table III types, one every %v, 5 GiB GPU\n\n",
		*n, 5*time.Second)
	fmt.Printf("%-10s  %14s  %16s  %14s\n", "algorithm", "finish (s)", "avg suspended (s)", "max susp (s)")

	type agg struct{ finish, avg, max time.Duration }
	results := map[string]agg{}
	for rep := 0; rep < *reps; rep++ {
		trace := convgpu.GenerateTrace(*n, 5*time.Second, *seed+int64(rep))
		for _, alg := range convgpu.Algorithms() {
			res, err := convgpu.Simulate(trace, convgpu.SimConfig{Algorithm: alg, AlgSeed: *seed})
			if err != nil {
				log.Fatal(err)
			}
			if res.Stalled {
				log.Fatalf("%s: run stalled — this should be impossible with reclaiming grants", alg)
			}
			a := results[alg]
			a.finish += res.FinishTime / time.Duration(*reps)
			a.avg += res.AvgSuspended / time.Duration(*reps)
			a.max += res.MaxSuspended / time.Duration(*reps)
			results[alg] = a
		}
	}

	bestFinish := ""
	for _, alg := range convgpu.Algorithms() {
		a := results[alg]
		fmt.Printf("%-10s  %14.1f  %16.1f  %14.1f\n",
			alg, a.finish.Seconds(), a.avg.Seconds(), a.max.Seconds())
		if bestFinish == "" || a.finish < results[bestFinish].finish {
			bestFinish = alg
		}
	}
	fmt.Printf("\nfastest overall: %s", bestFinish)
	if bestFinish == convgpu.BestFit {
		fmt.Printf(" — matching the paper's Fig. 7 finding that Best-Fit maximizes GPU memory throughput")
	}
	fmt.Println()

	// Show one run in detail: who waited, and for how long.
	fmt.Printf("\nper-container detail (one %s run):\n", convgpu.BestFit)
	trace := convgpu.GenerateTrace(*n, 5*time.Second, *seed)
	res, err := convgpu.Simulate(trace, convgpu.SimConfig{Algorithm: convgpu.BestFit})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range res.Containers {
		marker := ""
		if c.Suspended > 0 {
			marker = fmt.Sprintf("  <- waited %v", c.Suspended.Round(time.Millisecond))
		}
		fmt.Printf("  %-16s arrived %-5v finished %-8v%s\n",
			c.ID, c.Arrival, c.Finished.Round(time.Millisecond), marker)
	}
}
