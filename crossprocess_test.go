package convgpu_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestCrossProcessSharedScheduler exercises the real deployment story:
// a convgpu-scheduler daemon in one OS process and two convgpu-docker
// processes in others, sharing one GPU memory arbiter over the UNIX
// control socket. Two xlarge containers (4 GiB each) cannot coexist on
// the 5 GiB budget, so the daemon must serialize them: both commands
// succeed, and one visibly waits for the other.
func TestCrossProcessSharedScheduler(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real subprocesses")
	}
	bin := t.TempDir()
	build := func(name, pkg string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, pkg)
		cmd.Dir = "."
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, b)
		}
		return out
	}
	scheduler := build("convgpu-scheduler", "./cmd/convgpu-scheduler")
	docker := build("convgpu-docker", "./cmd/convgpu-docker")

	baseDir := filepath.Join(t.TempDir(), "cv")
	sched := exec.Command(scheduler, "-basedir", baseDir, "-capacity", "5GiB", "-algorithm", "fifo")
	if err := sched.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		sched.Process.Kill()
		sched.Wait()
	}()
	ctl := filepath.Join(baseDir, "scheduler.sock")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(ctl); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scheduler socket never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Two xlarge jobs, kernels compressed to ~45 ms; the PCIe copies
	// (~1.3 s each at the simulated 6 GiB/s) dominate their runtime.
	run := func() (time.Duration, error) {
		start := time.Now()
		cmd := exec.Command(docker, "-scheduler", ctl, "-scale", "0.001",
			"run", "cuda-sample:xlarge")
		out, err := cmd.CombinedOutput()
		if err != nil {
			return 0, &procError{err: err, out: out}
		}
		return time.Since(start), nil
	}
	var wg sync.WaitGroup
	durations := make([]time.Duration, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			durations[i], errs[i] = run()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("convgpu-docker %d: %v", i, err)
		}
	}
	fast, slow := durations[0], durations[1]
	if fast > slow {
		fast, slow = slow, fast
	}
	t.Logf("container wall times: %v and %v", fast, slow)
	// Serialization evidence: the loser waited for the winner's whole
	// run, so it took substantially longer than its own compute.
	if slow < fast*14/10 {
		t.Fatalf("no serialization visible: %v vs %v (two 4GiB jobs on one 5GiB arbiter)", fast, slow)
	}
	// A small job afterwards sails through on the same daemon.
	if _, err := run2(docker, ctl, "cuda-sample:nano"); err != nil {
		t.Fatalf("followup nano job: %v", err)
	}
}

func run2(docker, ctl, image string) ([]byte, error) {
	cmd := exec.Command(docker, "-scheduler", ctl, "-scale", "0.001", "run", image)
	return cmd.CombinedOutput()
}

type procError struct {
	err error
	out []byte
}

func (e *procError) Error() string { return e.err.Error() + "\n" + string(e.out) }
