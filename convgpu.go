// Package convgpu is a reproduction of "ConVGPU: GPU Management
// Middleware in Container Based Virtualized Environment" (Kang, Jun,
// Kim, Kim, Kim — IEEE CLUSTER 2017): middleware that lets multiple
// containers share one GPU by virtualizing the *amount* of GPU memory
// each container may use.
//
// A CUDA wrapper module injected into every container (via the
// LD_PRELOAD seam) intercepts the allocation APIs of the paper's
// Table II and consults a host-side GPU memory scheduler over a UNIX
// domain socket. The scheduler accepts, suspends (pauses the container's
// allocation call), or rejects each request so that containers never
// oversubscribe physical GPU memory, and redistributes memory freed by
// terminating containers using one of four algorithms: FIFO, Best-Fit,
// Recent-Use, Random.
//
// This package is the public facade. It exposes:
//
//   - Stack, built with New(opts...) and brought up with Start(ctx):
//     the full middleware stack (simulated GPU + CUDA runtime, container
//     engine, scheduler daemon over real UNIX sockets, customized
//     nvidia-docker, volume plugin) assembled and wired, for running
//     containerized GPU workloads in-process;
//   - runtime observability: every Stack carries an Observability
//     bundle (counters, latency histograms, gauges, event trace) that
//     the live daemon also answers over the control socket (Stats,
//     Trace, Dump) and that MetricsHandler serves over HTTP;
//   - Simulate/SimulateSweep: the discrete-event replay of the paper's
//     scheduling experiments (Figures 7/8, Tables IV/V) in virtual time;
//   - errors.Is-able sentinels (ErrRejected, ErrSuspendedTimeout,
//     ErrDaemonUnavailable, ErrOverCapacity) matching failures wherever
//     they surface, including across the daemon socket;
//   - re-exports of the option types a caller needs (container types,
//     algorithms, sizes).
//
// The previous entry points (Config, NewSystem, System) remain as thin
// deprecated shims over New/Stack.
//
// The hardware and proprietary components of the paper's testbed
// (Tesla K20m, CUDA 8, Docker, NVIDIA Docker) are faithful simulations;
// the scheduler, wire protocol, wrapper logic and algorithms are real
// implementations. See DESIGN.md for the substitution table and
// EXPERIMENTS.md for measured-vs-paper results.
package convgpu

import (
	"context"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
	"convgpu/internal/cluster"
	"convgpu/internal/container"
	"convgpu/internal/core"
	"convgpu/internal/cuda"
	"convgpu/internal/gpu"
	"convgpu/internal/multigpu"
	"convgpu/internal/nvdocker"
	"convgpu/internal/plugin"
	"convgpu/internal/policy"
	"convgpu/internal/sim"
	"convgpu/internal/workload"
)

// Size is a byte quantity ("512MiB"-style). See ParseSize.
type Size = bytesize.Size

// Size units.
const (
	KiB = bytesize.KiB
	MiB = bytesize.MiB
	GiB = bytesize.GiB
)

// ParseSize parses "128MiB", "1g", "4096" (bytes).
func ParseSize(s string) (Size, error) { return bytesize.Parse(s) }

// Scheduling algorithm names (paper §III-D).
const (
	FIFO      = core.AlgFIFO
	BestFit   = core.AlgBestFit
	RecentUse = core.AlgRecentUse
	Random    = core.AlgRandom
)

// Tenant-aware policy names from the unified policy registry: the three
// wake-order policies for WithPolicy/WithAlgorithm and the
// fragmentation-aware placement policy for WithPlacementPolicy.
const (
	FairShare = policy.WakeFairShare
	QuotaFair = policy.WakeQuota
	Priority  = policy.WakePriority
	FragAware = policy.PlaceFragAware
)

// Algorithms lists the four algorithm names in the paper's order.
func Algorithms() []string { return core.AlgorithmNames() }

// Policies lists every registered wake-order policy: the paper's four
// first, then the tenant-aware ones.
func Policies() []string { return policy.WakeNames() }

// PlacementPolicies lists every registered device placement policy.
func PlacementPolicies() []string { return policy.PlaceNames() }

// Tenant is the identity a container registers under on a shared
// scheduler: name, fair-share weight, preemption priority, and optional
// quota (hard per-device cap on summed grants) and guarantee (soft pool
// reservation). Provision tenants with WithTenant; bind containers with
// RunOptions.Tenant.
type Tenant = core.Tenant

// TenantUsage is one named tenant's aggregated scheduler state
// (Stack.Tenants): configured attributes plus live containers, grants,
// usage and pending requests.
type TenantUsage = core.TenantUsage

// Re-exported workload types (paper Table III).
type ContainerType = workload.ContainerType

// ContainerTypes returns the paper's Table III (nano .. xlarge).
func ContainerTypes() []ContainerType { return workload.Types() }

// CUDA is the (simulated) CUDA Runtime API surface a containerized
// process programs against; inside a ConVGPU container it is interposed
// by the wrapper module.
type CUDA = cuda.API

// CUDAStreams is the stream/event surface (cudaStreamCreate,
// cudaEventRecord, cudaMemcpyAsync, ...). It is not intercepted by
// ConVGPU — execution passes through — and is reached by type-asserting
// a Proc's CUDA: p.CUDA.(convgpu.CUDAStreams).
type CUDAStreams = cuda.StreamAPI

// CUDADriver is the Driver-API surface (cuInit, cuCtxCreate,
// cuMemAlloc, ...). The wrapper module covers it exactly like the
// Runtime API (paper §III-C).
type CUDADriver = cuda.DriverAPI

// Kernel describes a simulated kernel launch.
type Kernel = cuda.Kernel

// GPUDevice is the simulated GPU.
type GPUDevice = gpu.Device

// RawDevice returns a fresh simulated Tesla K20m outside any ConVGPU
// management — the state of the world under plain NVIDIA Docker, where
// containers collide on device memory unarbitrated.
func RawDevice() *GPUDevice { return gpu.New(gpu.K20m()) }

// RawCUDA binds a process directly to a raw device, with no wrapper
// module in between.
func RawCUDA(dev *GPUDevice, pid int) CUDA { return cuda.NewRuntime(dev, pid) }

// Image, Spec-level types re-exported for running containers.
type (
	// Image is a container image with labels.
	Image = container.Image
	// Proc is the in-container process view handed to programs.
	Proc = container.Proc
	// Program is code run inside a container.
	Program = container.Program
	// Container is a created container.
	Container = container.Container
	// RunOptions configures a Run through the customized nvidia-docker.
	RunOptions = nvdocker.Options
)

// Image label keys nvidia-docker consults.
const (
	VolumesNeededLabel = nvdocker.VolumesNeededLabel
	CUDAVersionLabel   = nvdocker.CUDAVersionLabel
	MemoryLimitLabel   = nvdocker.MemoryLimitLabel
)

// DefaultMemoryLimit is the 1 GiB fallback limit (paper §III-B).
const DefaultMemoryLimit = nvdocker.DefaultMemoryLimit

// Config assembles a System.
//
// Deprecated: use New with functional options (WithCapacity,
// WithAlgorithm, ...), which cover these fields and the newer knobs
// (leases, call timeouts, observability). Config remains as a shim.
type Config struct {
	// BaseDir hosts the scheduler's control socket and per-container
	// directories. Default: a fresh temporary directory.
	BaseDir string
	// Capacity is the schedulable GPU memory. Default: the K20m's 5 GiB.
	Capacity Size
	// Algorithm is the redistribution algorithm name. Default FIFO.
	Algorithm string
	// AlgorithmSeed seeds the Random algorithm.
	AlgorithmSeed int64
	// GPU overrides the simulated device properties (default K20m).
	GPU *gpu.Properties
	// Latency enables the Figure 4 latency calibration on the device,
	// making CUDA calls consume realistic time.
	Latency bool
	// CreateLatency models the container runtime's creation cost
	// (Fig. 5 uses ~0.4 s).
	CreateLatency time.Duration
}

// System is the assembled ConVGPU middleware stack.
//
// Deprecated: use Stack (built with New, started with Start). System is
// a thin shim embedding *Stack; its Run/Create keep the old no-context
// signatures and everything else is the Stack surface.
type System struct {
	*Stack
}

// options converts the legacy Config into the equivalent option list.
func (cfg Config) options() []Option {
	var opts []Option
	if cfg.BaseDir != "" {
		opts = append(opts, WithBaseDir(cfg.BaseDir))
	}
	if cfg.Capacity != 0 {
		opts = append(opts, WithCapacity(cfg.Capacity))
	}
	if cfg.Algorithm != "" {
		opts = append(opts, WithAlgorithm(cfg.Algorithm))
	}
	if cfg.AlgorithmSeed != 0 {
		opts = append(opts, WithAlgorithmSeed(cfg.AlgorithmSeed))
	}
	if cfg.GPU != nil {
		opts = append(opts, WithGPU(*cfg.GPU))
	}
	if cfg.Latency {
		opts = append(opts, WithLatency())
	}
	if cfg.CreateLatency != 0 {
		opts = append(opts, WithCreateLatency(cfg.CreateLatency))
	}
	return opts
}

// NewSystem builds and starts the full stack: simulated GPU, scheduler
// core + daemon (real UNIX sockets), container engine, plugin, and the
// customized nvidia-docker. Close releases everything.
//
// Deprecated: use New(opts...) followed by Start(ctx); NewSystem is
// New + Start with a background context.
func NewSystem(cfg Config) (*System, error) {
	st, err := New(cfg.options()...)
	if err != nil {
		return nil, err
	}
	if err := st.Start(context.Background()); err != nil {
		return nil, err
	}
	return &System{Stack: st}, nil
}

// Run launches a container through the customized nvidia-docker: the
// full paper flow (limit resolution, registration, wrapper injection,
// exit detection).
//
// Deprecated: use Stack.Run, which takes a context.
func (s *System) Run(opts RunOptions) (*Container, error) {
	return s.Stack.Run(context.Background(), opts)
}

// Create is Run without starting the container.
//
// Deprecated: use Stack.Create, which takes a context.
func (s *System) Create(opts RunOptions) (*Container, error) {
	return s.Stack.Create(context.Background(), opts)
}

// SampleProgram returns the paper's evaluation sample program for a
// container type, with kernel time compressed by scale (1.0 = the
// paper's 5–45 s).
func SampleProgram(ct ContainerType, scale float64) Program {
	return workload.SampleProgram(ct, scale)
}

// MNISTProgram returns the Fig. 6 TensorFlow-MNIST-shaped workload.
func MNISTProgram(cfg MNISTConfig) Program { return workload.MNISTProgram(cfg) }

// MNISTConfig parameterizes MNISTProgram.
type MNISTConfig = workload.MNISTConfig

// CUDAImage returns an image carrying the labels a CUDA image has, with
// an optional memory-limit label.
func CUDAImage(name string, memoryLimit string) Image {
	labels := map[string]string{
		VolumesNeededLabel: "nvidia_driver",
		CUDAVersionLabel:   plugin.HostCUDAVersion,
	}
	if memoryLimit != "" {
		labels[MemoryLimitLabel] = memoryLimit
	}
	return Image{Name: name, Labels: labels}
}

// SchedulerInfo is a snapshot row of the scheduler's view.
type SchedulerInfo = core.ContainerInfo

// SchedulerEvent is one entry of the scheduler's event log.
type SchedulerEvent = core.EventRecord

// DeviceInfo summarizes one device a scheduler serves: index, capacity,
// free pool and placed-container count (Stack.Devices).
type DeviceInfo = core.DeviceInfo

// NodeStatus is one node's row of the cluster membership view
// (Stack.Nodes): its state (up, suspect, down, draining), capacity,
// free memory, container count and how many times it has failed over.
type NodeStatus = core.NodeStatus

// --- Discrete-event experiment surface (Figures 7/8, Tables IV/V) ---

// SimConfig configures a simulated scheduling run.
type SimConfig = sim.Config

// SimResult is the outcome of one simulated run.
type SimResult = sim.Result

// TraceEntry is one container arrival.
type TraceEntry = workload.TraceEntry

// GenerateTrace draws the paper's randomized cloud trace: n containers
// of uniformly random Table III types arriving every `spacing`.
func GenerateTrace(n int, spacing time.Duration, seed int64) []TraceEntry {
	return workload.GenerateTrace(n, spacing, seed)
}

// GeneratePoissonTrace draws a bursty cloud trace: Poisson arrivals with
// the given mean spacing (see the `poisson` experiment).
func GeneratePoissonTrace(n int, meanSpacing time.Duration, seed int64) []TraceEntry {
	return workload.GeneratePoissonTrace(n, meanSpacing, seed)
}

// Simulate replays one trace against the scheduler core in virtual time.
//
// Deprecated: use SimulateContext; Simulate runs with a background
// context.
func Simulate(trace []TraceEntry, cfg SimConfig) (SimResult, error) {
	return sim.Run(trace, cfg)
}

// SimulateContext replays one trace against the scheduler core in
// virtual time. The context is checked between simulated events, so a
// caller's deadline bounds even a pathological run.
func SimulateContext(ctx context.Context, trace []TraceEntry, cfg SimConfig) (SimResult, error) {
	return sim.RunContext(ctx, trace, cfg)
}

// Sweep is the paper's full Fig. 7/8 parameter sweep.
type Sweep = sim.Sweep

// SweepResult aggregates a sweep.
type SweepResult = sim.SweepResult

// DefaultSweep returns the paper's sweep: 4–38 containers step 2, four
// algorithms, six repetitions, 5 s arrivals.
func DefaultSweep() Sweep { return sim.DefaultSweep() }

// SimulateMultiGPU replays a trace against the multi-GPU extension
// (paper §V future work): `devices` GPUs of the configured capacity,
// containers placed by `policy` ("roundrobin", "leastloaded",
// "firstfit", "bestfit") and scheduled per device by `algorithm`.
func SimulateMultiGPU(trace []TraceEntry, devices int, policy, algorithm string) (SimResult, error) {
	clk := clock.NewManual()
	pol, err := multigpu.NewPolicy(policy)
	if err != nil {
		return SimResult{}, err
	}
	sched, err := multigpu.New(multigpu.Config{
		Devices:           devices,
		CapacityPerDevice: 5 * GiB,
		Algorithm:         algorithm,
		Policy:            pol,
		Clock:             clk,
	})
	if err != nil {
		return SimResult{}, err
	}
	return sim.RunWith(trace, sched, clk, sim.Config{})
}

// MultiGPUPolicies lists the placement policies of the multi-GPU
// extension.
func MultiGPUPolicies() []string { return multigpu.PolicyNames() }

// SimulateCluster replays a trace against the cluster extension (paper
// §V future work): `nodes` single-GPU nodes, containers placed by the
// Swarm-style `strategy` ("spread", "binpack", "random").
func SimulateCluster(trace []TraceEntry, nodes int, strategy, algorithm string) (SimResult, error) {
	clk := clock.NewManual()
	strat, err := cluster.NewStrategy(strategy, 1)
	if err != nil {
		return SimResult{}, err
	}
	cl, err := cluster.New(cluster.Config{
		Nodes:          nodes,
		GPUsPerNode:    1,
		CapacityPerGPU: 5 * GiB,
		Algorithm:      algorithm,
		Strategy:       strat,
		Clock:          clk,
	})
	if err != nil {
		return SimResult{}, err
	}
	return sim.RunWith(trace, cl, clk, sim.Config{})
}

// ClusterStrategies lists the Swarm-style strategies of the cluster
// extension.
func ClusterStrategies() []string { return cluster.StrategyNames() }
