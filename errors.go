package convgpu

import (
	"errors"

	"convgpu/internal/errs"
)

// Sentinel errors, matchable with errors.Is on anything the facade, the
// wrapper module or the nvidia-docker shim returns — including failures
// that crossed the daemon socket, which are reconstructed from the
// response's machine-readable error code.
var (
	// ErrRejected: the scheduler denied an allocation that would exceed
	// the container's memory limit. The wrapper surfaces it alongside
	// cudaErrorMemoryAllocation, so user code may match either.
	ErrRejected = errs.ErrRejected
	// ErrSuspendedTimeout: an allocation was suspended and the caller's
	// deadline expired before the scheduler admitted it.
	ErrSuspendedTimeout = errs.ErrSuspendedTimeout
	// ErrDaemonUnavailable: the scheduler daemon could not be reached.
	ErrDaemonUnavailable = errs.ErrDaemonUnavailable
	// ErrOverCapacity: a container's memory limit exceeds the GPU's
	// schedulable capacity.
	ErrOverCapacity = errs.ErrOverCapacity
	// ErrNodeDown: the cluster node involved is down — an admin verb hit
	// a failed node, or a container's work was evicted because no
	// surviving node could hold it after a failover.
	ErrNodeDown = errs.ErrNodeDown
	// ErrNotStarted: a Stack method that needs the running daemon was
	// called before Start.
	ErrNotStarted = errors.New("convgpu: stack not started (call Start first)")
)
